#pragma once

/**
 * @file
 * The one analytical-query result-report shape shared by every OLAP
 * pricing path: the single-instance engine (Fig. 9(b) decomposition)
 * and the comparison systems of htap/analytic_olap (Ideal / MI), which
 * answer queries identically by construction and differ only in how
 * `consistencyNs` is produced (snapshot + defragmentation vs. full
 * column-store rebuild).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pushtap::olap {

/** One query's execution report (Fig. 9(b) decomposition). */
struct QueryReport
{
    std::string name;
    TimeNs pimNs = 0.0;         ///< PIM load + compute + offload.
    TimeNs cpuNs = 0.0;         ///< CPU-side operator work.
    TimeNs consistencyNs = 0.0; ///< Snapshot (+ defrag) or rebuild.
    TimeNs cpuBlockedNs = 0.0;  ///< Bank-lock time seen by OLTP.
    std::uint64_t rowsVisible = 0;
    /**
     * Distinct probe Int columns the batch executor streamed in one
     * fused filter+group+aggregate pass (0 when a join intervened).
     * Purely informational unless OlapConfig::fuseScans also prices
     * the pass as a single serial scan.
     */
    std::uint32_t fusedScanColumns = 0;
    /**
     * PIM bytes streamed per shard (one entry per configured shard;
     * filled by the single-instance engine's per-shard pricing, left
     * empty by the analytic baselines). The entries of a
     * shards-partitioned run always sum to the shards=1 total: the
     * per-shard ScanCost schedules compose additively.
     */
    std::vector<Bytes> shardBytes;
    /**
     * CPU-side cross-shard consolidation charge (one partial
     * accumulator set shipped per shard), already included in cpuNs.
     * Zero when shards=1, so single-shard decompositions are
     * unchanged.
     */
    TimeNs mergeNs = 0.0;
    /**
     * CPU-side consolidation charge of the parallel pre-query
     * phases (stitching each join's per-shard partial build
     * partitions, folding each subquery's per-shard partial group
     * accumulators), already included in cpuNs. Zero when shards=1
     * — the builds run as one serial-order scan there and the
     * single-shard golden decompositions stay bit-for-bit.
     */
    TimeNs buildMergeNs = 0.0;

    // ------ Cost-based optimizer surface (OlapConfig::optimize) ---
    // All defaulted to the "hand-built plan ran" values, so reports
    // from an optimize-off engine are unchanged field-for-field.

    /** True when the adaptive optimizer chose the physical plan. */
    bool optimized = false;
    /** Modelled cost (pim + cpu) of the hand-built plan, priced over
     *  the same snapshot and visible-row count. */
    TimeNs pricedHandBuiltNs = 0.0;
    /** Modelled cost of the chosen plan — never above
     *  pricedHandBuiltNs (the optimizer only accepts strictly
     *  cheaper transforms, priced in the hand-built summation
     *  order). */
    TimeNs pricedChosenNs = 0.0;
    /** Resolved execution knobs the query actually ran with (0 when
     *  the optimizer was off). Pricing stays at the configured shard
     *  count — these are the host-side knobs. */
    std::uint32_t execShards = 0;
    std::uint32_t execWorkers = 0;
    std::uint32_t execMorselRows = 0;
    /** Scans the placement pass moved from PIM to the CPU gather
     *  path (Eq. (3)-style crossover, priced per site). */
    std::uint32_t cpuDemotedScans = 0;
    /** Joins not at their hand-built position / inner joins demoted
     *  to semi joins. */
    std::uint32_t joinsReordered = 0;
    std::uint32_t joinsDemoted = 0;
    /** One-line physical-plan summary (EXPLAIN's short form). */
    std::string planSummary;

    // ------ Result-cache surface (OlapConfig::resultCache) --------
    // All defaulted to the "cold full run" values, so reports from a
    // cache-off engine are unchanged field-for-field.

    /** True when the answer was served from the frontier-keyed cache
     *  without executing (exact hit: the footprint frontier vector
     *  matched the cached entry's). */
    bool cacheHit = false;
    /** Rows the delta-incremental path actually scanned — the rows
     *  appended to the probe table since the cached baseline. Zero on
     *  cold runs and exact hits. */
    std::uint64_t incrementalRows = 0;
    /** Measured wall-clock of the delta re-execution (scan of the
     *  appended rows + fold into the cached accumulators). Zero on
     *  cold runs and exact hits. */
    TimeNs deltaScanNs = 0.0;

    TimeNs
    totalNs() const
    {
        return pimNs + cpuNs + consistencyNs;
    }
};

} // namespace pushtap::olap
