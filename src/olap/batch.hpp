#pragma once

/**
 * @file
 * Morsel-driven batch execution layer under the OLAP operators.
 *
 * The executor walks each table in *morsels* of up to kMorselRows
 * rows per region. A morsel's snapshot visibility becomes a
 * SelectionVector via word-level bitmap extraction (no bit-by-bit
 * findNext walk); every referenced column is then decoded once per
 * morsel into a typed ColumnBatch — through a zero-copy stride read
 * straight off the contiguous region bytes when the column is
 * unfragmented, through the fragment-gather path otherwise — and
 * predicates run as selection-vector kernels that compact the
 * selection in place. The whole predicate chain, and (when no join
 * intervenes) the aggregate update too, fuses into a single pass
 * over each morsel.
 *
 * This layer is purely functional: the pricing walks still charge
 * one serial scan per operator input (section 6.2) unless the
 * modelled fused-scan option is enabled (OlapConfig::fuseScans).
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "format/layout.hpp"
#include "storage/table_store.hpp"

namespace pushtap::olap {

/** Default rows per morsel: large enough to amortize per-batch
 *  setup, small enough that a handful of decoded columns stay
 *  cache-resident. Tunable (power of two) via ExecOptions::morselRows
 *  and OlapConfig::morselRows. */
inline constexpr std::uint32_t kMorselRows = 2048;

/** One morsel: rows [base, base + count) of one region. */
struct Morsel
{
    storage::Region reg = storage::Region::Data;
    RowId base = 0;
    std::uint32_t count = 0;
};

/**
 * Offsets (relative to a morsel's base row) of the rows still
 * selected, ascending. Kernels compact it in place.
 */
struct SelectionVector
{
    std::vector<std::uint32_t> idx;

    std::size_t size() const { return idx.size(); }
    bool empty() const { return idx.empty(); }
    void clear() { idx.clear(); }
    std::span<const std::uint32_t> span() const { return idx; }
};

/**
 * Reusable typed buffer one morsel's decode of one column lands in:
 * `ints` for Int columns, `chars` (column-width bytes per selected
 * row) for Char columns. Entry i corresponds to the i-th entry of
 * the selection the gather ran over.
 */
struct ColumnBatch
{
    std::vector<std::int64_t> ints;
    std::vector<std::uint8_t> chars;
};

/**
 * Batched column access over one table store: decodes one column for
 * a whole selection per call. Unfragmented columns stream through
 * TableLayout::strideAccess + TableStore::partBytes (per
 * block-circulant block segment, so each segment is one contiguous
 * strided read); fragmented columns fall back to the per-row
 * fragment gather. No scratch-buffer view ever escapes a call.
 */
class BatchColumnReader
{
  public:
    BatchColumnReader(const storage::TableStore &store,
                      const std::string &column);
    BatchColumnReader(const storage::TableStore &store, ColumnId c);

    const format::Column &column() const { return *column_; }

    /** True when the zero-copy stride path is available. */
    bool strided() const { return access_.has_value(); }

    /** Decode rows (m.base + sel[i]) into out.ints[0..sel.size()). */
    void gatherInts(const Morsel &m,
                    std::span<const std::uint32_t> sel,
                    ColumnBatch &out) const;

    /** Copy raw bytes of rows (m.base + sel[i]) into out.chars. */
    void gatherChars(const Morsel &m,
                     std::span<const std::uint32_t> sel,
                     ColumnBatch &out) const;

  private:
    /** Per-circulant-block segmentation shared by both gathers. */
    template <typename Emit>
    void forEachStrideSegment(const Morsel &m,
                              std::span<const std::uint32_t> sel,
                              Emit &&emit) const;

    const storage::TableStore *store_;
    const format::Column *column_;
    ColumnId col_;
    std::optional<format::StrideAccess> access_;
    mutable std::vector<std::uint8_t> buf_; ///< Fragment scratch.
};

/**
 * Fill @p sel with the snapshot-visible rows of morsel @p m
 * (word-level extraction from the region's visibility bitmap).
 */
void visibleRows(const storage::TableStore &store, const Morsel &m,
                 SelectionVector &sel);

/**
 * Range predicate kernel: keep sel[i] iff lo <= vals[i] <= hi.
 * @p vals is parallel to @p sel (gathered over it).
 */
void filterIntRange(std::span<const std::int64_t> vals,
                    SelectionVector &sel, std::int64_t lo,
                    std::int64_t hi);

/**
 * Prefix predicate kernel over char payloads of @p width bytes per
 * selected row: keep sel[i] iff (payload starts with prefix) XOR
 * negate. @p chars is parallel to @p sel.
 */
void filterCharPrefix(std::span<const std::uint8_t> chars,
                      std::uint32_t width, SelectionVector &sel,
                      std::string_view prefix, bool negate);

/**
 * Apply fn(Morsel) to every morsel of rows [begin, end) of region
 * @p reg, ascending. Morsel bases are relative to @p begin, so a
 * shard's walk is independent of the other shards' extents.
 */
template <typename Fn>
void
forEachMorselInRange(storage::Region reg, RowId begin, RowId end,
                     std::uint32_t morsel_rows, Fn &&fn)
{
    for (RowId b = begin; b < end; b += morsel_rows)
        fn(Morsel{reg, b,
                  static_cast<std::uint32_t>(
                      std::min<RowId>(morsel_rows, end - b))});
}

/**
 * Apply fn(Morsel) to every morsel of both regions: the data region
 * first, then the delta region, ascending — the same row order the
 * scalar forEachVisibleRow walk produces.
 */
template <typename Fn>
void
forEachMorsel(const storage::TableStore &store, Fn &&fn,
              std::uint32_t morsel_rows = kMorselRows)
{
    forEachMorselInRange(storage::Region::Data, 0,
                         store.dataVisible().size(), morsel_rows, fn);
    forEachMorselInRange(storage::Region::Delta, 0,
                         store.deltaVisible().size(), morsel_rows,
                         fn);
}

} // namespace pushtap::olap
