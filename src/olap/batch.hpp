#pragma once

/**
 * @file
 * Morsel-driven batch execution layer under the OLAP operators.
 *
 * The executor walks each table in *morsels* of up to kMorselRows
 * rows per region. A morsel's snapshot visibility becomes a
 * SelectionVector via word-level bitmap extraction (no bit-by-bit
 * findNext walk); every referenced column is then decoded once per
 * morsel into a typed ColumnBatch — through a zero-copy stride read
 * straight off the contiguous region bytes when the column is
 * unfragmented, through the fragment-gather path otherwise — and
 * predicates run as selection-vector kernels that compact the
 * selection in place. The whole predicate chain, and (when no join
 * intervenes) the aggregate update too, fuses into a single pass
 * over each morsel.
 *
 * This layer is purely functional: the pricing walks still charge
 * one serial scan per operator input (section 6.2) unless the
 * modelled fused-scan option is enabled (OlapConfig::fuseScans).
 */

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "format/layout.hpp"
#include "olap/expr.hpp"
#include "storage/table_store.hpp"

namespace pushtap::olap {

/** Default rows per morsel: large enough to amortize per-batch
 *  setup, small enough that a handful of decoded columns stay
 *  cache-resident. Tunable (power of two) via ExecOptions::morselRows
 *  and OlapConfig::morselRows. */
inline constexpr std::uint32_t kMorselRows = 2048;

/** One morsel: rows [base, base + count) of one region. */
struct Morsel
{
    storage::Region reg = storage::Region::Data;
    RowId base = 0;
    std::uint32_t count = 0;
};

/**
 * Minimal allocator that hands out 64-byte-aligned storage, so the
 * SIMD kernels' vector loads over morsel buffers never split a cache
 * line. All instances are interchangeable (stateless).
 */
template <typename T>
struct Aligned64Allocator
{
    using value_type = T;
    static constexpr std::align_val_t kAlign{64};

    Aligned64Allocator() = default;
    template <typename U>
    Aligned64Allocator(const Aligned64Allocator<U> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), kAlign));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, kAlign);
    }

    template <typename U>
    bool
    operator==(const Aligned64Allocator<U> &) const noexcept
    {
        return true;
    }
};

/** 64-byte-aligned vector for morsel-resident kernel buffers. */
template <typename T>
using AlignedVec = std::vector<T, Aligned64Allocator<T>>;

/**
 * Offsets (relative to a morsel's base row) of the rows still
 * selected, ascending. Kernels compact it in place.
 */
struct SelectionVector
{
    AlignedVec<std::uint32_t> idx;

    std::size_t size() const { return idx.size(); }
    bool empty() const { return idx.empty(); }
    void clear() { idx.clear(); }
    std::span<const std::uint32_t> span() const { return idx; }
};

/**
 * Reusable typed buffer one morsel's decode of one column lands in:
 * `ints` for Int columns, `chars` (column-width bytes per selected
 * row) for Char columns, `codes` for dictionary codes of
 * dict-encoded Char columns. Entry i corresponds to the i-th entry
 * of the selection the gather ran over.
 */
struct ColumnBatch
{
    AlignedVec<std::int64_t> ints;
    AlignedVec<std::uint8_t> chars;
    AlignedVec<std::uint32_t> codes;
};

/**
 * Batched column access over one table store: decodes one column for
 * a whole selection per call. Unfragmented columns stream through
 * TableLayout::strideAccess + TableStore::partBytes (per
 * block-circulant block segment, so each segment is one contiguous
 * strided read); fragmented columns fall back to the per-row
 * fragment gather. No scratch-buffer view ever escapes a call.
 */
class BatchColumnReader
{
  public:
    BatchColumnReader(const storage::TableStore &store,
                      const std::string &column);
    BatchColumnReader(const storage::TableStore &store, ColumnId c);

    const format::Column &column() const { return *column_; }

    /** True when the zero-copy stride path is available. */
    bool strided() const { return access_.has_value(); }

    /** Decode rows (m.base + sel[i]) into out.ints[0..sel.size()). */
    void gatherInts(const Morsel &m,
                    std::span<const std::uint32_t> sel,
                    ColumnBatch &out) const;

    /** Copy raw bytes of rows (m.base + sel[i]) into out.chars. */
    void gatherChars(const Morsel &m,
                     std::span<const std::uint32_t> sel,
                     ColumnBatch &out) const;

    /** Frozen dictionary of this column, or nullptr. */
    const format::ColumnDictionary *
    dict() const
    {
        return store_->dictionary(col_);
    }

    /**
     * True when dictionary codes can stand in for the raw bytes of
     * this morsel: data region (delta rows carry no codes) and every
     * post-freeze write found its value in the frozen table.
     */
    bool
    dictUsable(const Morsel &m) const
    {
        return m.reg == storage::Region::Data && dict() != nullptr &&
               store_->dictFullyCoded(col_);
    }

    /** Unpack dict codes of rows (m.base + sel[i]) into out.codes.
     *  Only valid when dictUsable(m). */
    void gatherCodes(const Morsel &m,
                     std::span<const std::uint32_t> sel,
                     ColumnBatch &out) const;

  private:
    /** Per-circulant-block segmentation shared by both gathers. */
    template <typename Emit>
    void forEachStrideSegment(const Morsel &m,
                              std::span<const std::uint32_t> sel,
                              Emit &&emit) const;

    const storage::TableStore *store_;
    const format::Column *column_;
    ColumnId col_;
    std::optional<format::StrideAccess> access_;
    mutable std::vector<std::uint8_t> buf_; ///< Fragment scratch.
};

/**
 * Inline composite key: join, group and subquery keys hashed as
 * whole int tuples (no per-row byte-string building). Capacity
 * bounds the batch engine; wider plans fall back to the scalar
 * executor.
 */
struct InlineKey
{
    static constexpr std::size_t kMaxKeys = 8;

    std::array<std::int64_t, kMaxKeys> v{};
    std::uint32_t n = 0;

    bool
    operator==(const InlineKey &o) const
    {
        if (n != o.n)
            return false;
        for (std::uint32_t i = 0; i < n; ++i)
            if (v[i] != o.v[i])
                return false;
        return true;
    }

    /** Lexicographic over the used slots (== std::map<vector> order
     *  of the scalar executor when every key has the same arity). */
    bool
    operator<(const InlineKey &o) const
    {
        for (std::uint32_t i = 0; i < n && i < o.n; ++i)
            if (v[i] != o.v[i])
                return v[i] < o.v[i];
        return n < o.n;
    }
};

struct InlineKeyHash
{
    std::size_t
    operator()(const InlineKey &k) const
    {
        // SplitMix64-style mixing per component, FNV-style fold.
        std::uint64_t h = 0x9e3779b97f4a7c15ull + k.n;
        for (std::uint32_t i = 0; i < k.n; ++i) {
            std::uint64_t x = static_cast<std::uint64_t>(k.v[i]);
            x ^= x >> 30;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 27;
            x *= 0x94d049bb133111ebull;
            x ^= x >> 31;
            h = (h ^ x) * 0x100000001b3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

/**
 * One materialized scalar subquery (SubquerySpec): per-group-key
 * aggregate values, probed read-only by every worker during the
 * main pipeline. A key with no group evaluates to 0 in every slot
 * (the IR's missing-group semantics).
 */
struct SubqueryResult
{
    std::unordered_map<InlineKey, std::vector<std::int64_t>,
                       InlineKeyHash>
        groups;
    std::size_t slots = 0; ///< Aggregate count per group.

    std::int64_t
    value(const InlineKey &key, std::size_t slot) const
    {
        const auto it = groups.find(key);
        return it == groups.end() ? 0 : it->second[slot];
    }
};

/**
 * Dictionary fast path for one LIKE predicate: per-entry codes
 * (parallel to the current entry set) plus the pattern's match table
 * over the dictionary (cardinality + 1 entries, 1 = match; the
 * sentinel entry never matches). Both spans stay valid until the
 * context's next batch begins.
 */
struct DictFilterView
{
    std::span<const std::uint32_t> codes;
    std::span<const std::uint32_t> lut;
};

/**
 * Leaf resolution for one batch expression evaluation: maps column
 * references to value vectors parallel to the current entry set
 * (a morsel's surviving selection, or the expanded post-join
 * entries) and subquery references to their materialized tables.
 * Implementations own the gather scratch; spans stay valid until
 * the next provider call for the same column.
 */
class BatchExprContext
{
  public:
    virtual ~BatchExprContext() = default;

    /** Entries in the current batch. */
    virtual std::size_t entries() const = 0;

    /** Int column values of @p ref, one per entry. */
    virtual std::span<const std::int64_t> ints(const ColRef &ref) = 0;

    /**
     * Raw Char column payload of @p ref: width bytes per entry,
     * written to @p width. Contexts without char access (post-join
     * aggregate evaluation) fatal — those evaluate LIKE through
     * likeValues() instead.
     */
    virtual std::span<const std::uint8_t>
    chars(const ColRef &ref, std::uint32_t &width) = 0;

    /**
     * Per-entry values of SubqueryRef node @p ref: the context
     * resolves the plan's SubquerySpec keys against its own columns
     * and probes the materialized lookup (fatal in contexts without
     * subquery access — validatePlan keeps SubqueryRef inside probe
     * filters).
     */
    virtual std::span<const std::int64_t>
    subqueryValues(const Expr &ref) = 0;

    /**
     * 0/1 values of LIKE node @p e, one per entry. The default
     * evaluates raw bytes via chars(); morsel contexts override with
     * the dictionary code path when available, and post-join contexts
     * serve pre-evaluated vectors (decoded through the dictionary)
     * registered by the operator.
     */
    virtual std::span<const std::int64_t> likeValues(const Expr &e);

    /**
     * Dictionary fast path for a fused LIKE over column @p ref with
     * @p pattern: codes + match table parallel to the current entry
     * set, or nullopt when the column is not dict-encoded (or the
     * context has no dictionary access).
     */
    virtual std::optional<DictFilterView>
    dictLike(const ColRef &ref, const std::string &pattern)
    {
        (void)ref;
        (void)pattern;
        return std::nullopt;
    }

  protected:
    std::vector<std::int64_t> likeScratch_;
};

/**
 * Evaluate @p e column-at-a-time over the context's entries into
 * @p out (resized to entries()). Uses the shared IR semantics
 * (olap/expr.hpp): wrapping arithmetic, guarded division, 0/1
 * booleans.
 */
void evalExprBatch(const Expr &e, BatchExprContext &ctx,
                   std::vector<std::int64_t> &out);

/**
 * Predicate kernel: keep the selection entries where @p e is
 * nonzero. Comparison roots with one literal side and bare (negated)
 * LIKE roots run fused — the compare/match compacts the selection
 * directly off the gathered column without materializing a boolean
 * vector. @p sel must have exactly ctx.entries() entries.
 */
void filterExprBatch(const Expr &e, BatchExprContext &ctx,
                     SelectionVector &sel);

/**
 * LIKE predicate kernel over char payloads of @p width bytes per
 * selected row: keep sel[i] iff likeMatch(payload) != negate.
 * @p chars is parallel to @p sel.
 */
void filterCharLike(std::span<const std::uint8_t> chars,
                    std::uint32_t width, SelectionVector &sel,
                    std::string_view pattern, bool negate);

/**
 * Fill @p sel with the snapshot-visible rows of morsel @p m
 * (word-level extraction from the region's visibility bitmap).
 */
void visibleRows(const storage::TableStore &store, const Morsel &m,
                 SelectionVector &sel);

/**
 * Range predicate kernel: keep sel[i] iff lo <= vals[i] <= hi.
 * @p vals is parallel to @p sel (gathered over it).
 */
void filterIntRange(std::span<const std::int64_t> vals,
                    SelectionVector &sel, std::int64_t lo,
                    std::int64_t hi);

/**
 * Prefix predicate kernel over char payloads of @p width bytes per
 * selected row: keep sel[i] iff (payload starts with prefix) XOR
 * negate. @p chars is parallel to @p sel.
 */
void filterCharPrefix(std::span<const std::uint8_t> chars,
                      std::uint32_t width, SelectionVector &sel,
                      std::string_view prefix, bool negate);

/**
 * Apply fn(Morsel) to every morsel of rows [begin, end) of region
 * @p reg, ascending. Morsel bases are relative to @p begin, so a
 * shard's walk is independent of the other shards' extents.
 */
template <typename Fn>
void
forEachMorselInRange(storage::Region reg, RowId begin, RowId end,
                     std::uint32_t morsel_rows, Fn &&fn)
{
    for (RowId b = begin; b < end; b += morsel_rows)
        fn(Morsel{reg, b,
                  static_cast<std::uint32_t>(
                      std::min<RowId>(morsel_rows, end - b))});
}

/**
 * Apply fn(Morsel) to every morsel of both regions: the data region
 * first, then the delta region, ascending — the same row order the
 * scalar forEachVisibleRow walk produces.
 */
template <typename Fn>
void
forEachMorsel(const storage::TableStore &store, Fn &&fn,
              std::uint32_t morsel_rows = kMorselRows)
{
    forEachMorselInRange(storage::Region::Data, 0,
                         store.dataVisible().size(), morsel_rows, fn);
    forEachMorselInRange(storage::Region::Delta, 0,
                         store.deltaVisible().size(), morsel_rows,
                         fn);
}

} // namespace pushtap::olap
