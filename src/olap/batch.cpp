#include "olap/batch.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "format/row_codec.hpp"

namespace pushtap::olap {

using storage::Region;

BatchColumnReader::BatchColumnReader(const storage::TableStore &store,
                                     const std::string &column)
    : BatchColumnReader(store, store.schema().columnId(column))
{
}

BatchColumnReader::BatchColumnReader(const storage::TableStore &store,
                                     ColumnId c)
    : store_(&store),
      column_(&store.schema().column(c)),
      col_(c),
      access_(store.layout().strideAccess(c))
{
    if (!access_)
        buf_.resize(column_->width);
}

/**
 * Split the selection into runs that stay inside one block-circulant
 * block (the device holding the slot is constant within a block) and
 * hand each run's strided base pointer to @p emit(sub_sel, base,
 * out_index). Requires the stride path (access_ set).
 */
template <typename Emit>
void
BatchColumnReader::forEachStrideSegment(
    const Morsel &m, std::span<const std::uint32_t> sel,
    Emit &&emit) const
{
    const auto &bc = store_->circulant();
    std::size_t i = 0;
    while (i < sel.size()) {
        const RowId row = m.base + sel[i];
        std::size_t j = i + 1;
        if (bc.enabled()) {
            const RowId block_end =
                (bc.blockOf(row) + 1) * bc.blockRows();
            while (j < sel.size() && m.base + sel[j] < block_end)
                ++j;
        } else {
            j = sel.size();
        }
        const std::uint32_t dev = bc.deviceFor(access_->slot, row);
        const std::uint8_t *base =
            store_->partBytes(m.reg, access_->part, dev).data() +
            access_->slotOffset + m.base * access_->stride;
        emit(sel.subspan(i, j - i), base, i);
        i = j;
    }
}

void
BatchColumnReader::gatherInts(const Morsel &m,
                              std::span<const std::uint32_t> sel,
                              ColumnBatch &out) const
{
    out.ints.resize(sel.size());
    if (!access_) {
        for (std::size_t i = 0; i < sel.size(); ++i) {
            store_->readColumnBytes(m.reg, col_, m.base + sel[i],
                                    buf_);
            out.ints[i] = format::decodeValue(*column_, buf_);
        }
        return;
    }
    forEachStrideSegment(
        m, sel,
        [&](std::span<const std::uint32_t> seg,
            const std::uint8_t *base, std::size_t at) {
            format::decodeIntStride(*column_, base, access_->stride,
                                    seg, out.ints.data() + at);
        });
}

void
BatchColumnReader::gatherChars(const Morsel &m,
                               std::span<const std::uint32_t> sel,
                               ColumnBatch &out) const
{
    const std::uint32_t w = column_->width;
    out.chars.resize(sel.size() * w);
    if (!access_) {
        for (std::size_t i = 0; i < sel.size(); ++i)
            store_->readColumnBytes(
                m.reg, col_, m.base + sel[i],
                std::span<std::uint8_t>(out.chars).subspan(i * w, w));
        return;
    }
    forEachStrideSegment(
        m, sel,
        [&](std::span<const std::uint32_t> seg,
            const std::uint8_t *base, std::size_t at) {
            format::gatherCharsStride(*column_, base,
                                      access_->stride, seg,
                                      out.chars.data() + at * w);
        });
}

void
visibleRows(const storage::TableStore &store, const Morsel &m,
            SelectionVector &sel)
{
    sel.clear();
    const Bitmap &bm = m.reg == Region::Data ? store.dataVisible()
                                             : store.deltaVisible();
    bm.collectSetBits(m.base, m.base + m.count, sel.idx);
}

void
filterIntRange(std::span<const std::int64_t> vals,
               SelectionVector &sel, std::int64_t lo, std::int64_t hi)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < sel.idx.size(); ++i) {
        const std::uint32_t off = sel.idx[i];
        sel.idx[n] = off;
        n += static_cast<std::size_t>(vals[i] >= lo && vals[i] <= hi);
    }
    sel.idx.resize(n);
}

void
filterCharPrefix(std::span<const std::uint8_t> chars,
                 std::uint32_t width, SelectionVector &sel,
                 std::string_view prefix, bool negate)
{
    // A prefix longer than the column can never match (substr
    // semantics of the scalar path).
    const bool possible = prefix.size() <= width;
    std::size_t n = 0;
    for (std::size_t i = 0; i < sel.idx.size(); ++i) {
        const bool match =
            possible &&
            std::memcmp(chars.data() + i * width, prefix.data(),
                        prefix.size()) == 0;
        sel.idx[n] = sel.idx[i];
        n += static_cast<std::size_t>(match != negate);
    }
    sel.idx.resize(n);
}

} // namespace pushtap::olap
