#include "olap/batch.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/log.hpp"
#include "format/row_codec.hpp"
#include "olap/simd_kernels.hpp"

namespace pushtap::olap {

using storage::Region;

BatchColumnReader::BatchColumnReader(const storage::TableStore &store,
                                     const std::string &column)
    : BatchColumnReader(store, store.schema().columnId(column))
{
}

BatchColumnReader::BatchColumnReader(const storage::TableStore &store,
                                     ColumnId c)
    : store_(&store),
      column_(&store.schema().column(c)),
      col_(c),
      access_(store.layout().strideAccess(c))
{
    if (!access_)
        buf_.resize(column_->width);
}

/**
 * Split the selection into runs that stay inside one block-circulant
 * block (the device holding the slot is constant within a block) and
 * hand each run's strided base pointer to @p emit(sub_sel, base,
 * out_index). Requires the stride path (access_ set).
 */
template <typename Emit>
void
BatchColumnReader::forEachStrideSegment(
    const Morsel &m, std::span<const std::uint32_t> sel,
    Emit &&emit) const
{
    const auto &bc = store_->circulant();
    std::size_t i = 0;
    while (i < sel.size()) {
        const RowId row = m.base + sel[i];
        std::size_t j = i + 1;
        if (bc.enabled()) {
            const RowId block_end =
                (bc.blockOf(row) + 1) * bc.blockRows();
            while (j < sel.size() && m.base + sel[j] < block_end)
                ++j;
        } else {
            j = sel.size();
        }
        const std::uint32_t dev = bc.deviceFor(access_->slot, row);
        const std::uint8_t *base =
            store_->partBytes(m.reg, access_->part, dev).data() +
            access_->slotOffset + m.base * access_->stride;
        emit(sel.subspan(i, j - i), base, i);
        i = j;
    }
}

void
BatchColumnReader::gatherInts(const Morsel &m,
                              std::span<const std::uint32_t> sel,
                              ColumnBatch &out) const
{
    out.ints.resize(sel.size());
    if (!access_) {
        for (std::size_t i = 0; i < sel.size(); ++i) {
            store_->readColumnBytes(m.reg, col_, m.base + sel[i],
                                    buf_);
            out.ints[i] = format::decodeValue(*column_, buf_);
        }
        return;
    }
    forEachStrideSegment(
        m, sel,
        [&](std::span<const std::uint32_t> seg,
            const std::uint8_t *base, std::size_t at) {
            if (!simd::decodeIntStride(*column_, base,
                                       access_->stride, seg,
                                       out.ints.data() + at))
                format::decodeIntStride(*column_, base,
                                        access_->stride, seg,
                                        out.ints.data() + at);
        });
}

void
BatchColumnReader::gatherChars(const Morsel &m,
                               std::span<const std::uint32_t> sel,
                               ColumnBatch &out) const
{
    const std::uint32_t w = column_->width;
    out.chars.resize(sel.size() * w);
    if (!access_) {
        for (std::size_t i = 0; i < sel.size(); ++i)
            store_->readColumnBytes(
                m.reg, col_, m.base + sel[i],
                std::span<std::uint8_t>(out.chars).subspan(i * w, w));
        return;
    }
    forEachStrideSegment(
        m, sel,
        [&](std::span<const std::uint32_t> seg,
            const std::uint8_t *base, std::size_t at) {
            format::gatherCharsStride(*column_, base,
                                      access_->stride, seg,
                                      out.chars.data() + at * w);
        });
}

void
BatchColumnReader::gatherCodes(const Morsel &m,
                               std::span<const std::uint32_t> sel,
                               ColumnBatch &out) const
{
    const format::ColumnDictionary *d = dict();
    if (m.reg != Region::Data || d == nullptr)
        fatal("gatherCodes: column {} has no data-region codes",
              column_->name);
    simd::gatherDictCodes(store_->dictDataCodes(col_),
                          d->codeWidthBytes(), m.base, sel,
                          out.codes);
}

void
visibleRows(const storage::TableStore &store, const Morsel &m,
            SelectionVector &sel)
{
    sel.clear();
    const Bitmap &bm = m.reg == Region::Data ? store.dataVisible()
                                             : store.deltaVisible();
    bm.collectSetBits(m.base, m.base + m.count, sel.idx);
}

void
filterIntRange(std::span<const std::int64_t> vals,
               SelectionVector &sel, std::int64_t lo, std::int64_t hi)
{
    simd::filterRange(vals, sel, lo, hi);
}

std::span<const std::int64_t>
BatchExprContext::likeValues(const Expr &e)
{
    std::uint32_t w = 0;
    const auto payload = chars(e.col, w);
    const std::size_t n = entries();
    likeScratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        likeScratch_[i] =
            likeMatch(payload.subspan(i * w, w), e.pattern) ? 1 : 0;
    return likeScratch_;
}

namespace {

/**
 * Recursive column-at-a-time evaluation. Column leaves copy the
 * provider span (the provider may reuse its scratch across calls
 * for different columns); everything else computes in place over
 * freshly sized vectors — morsel-bounded, so the transient
 * allocations stay small and cache-friendly.
 */
void
evalRec(const Expr &e, BatchExprContext &ctx,
        std::vector<std::int64_t> &out)
{
    const std::size_t n = ctx.entries();
    switch (e.op) {
      case ExprOp::IntLit:
        out.assign(n, e.lit);
        return;
      case ExprOp::Column: {
        const auto vals = ctx.ints(e.col);
        out.assign(vals.begin(), vals.end());
        return;
      }
      case ExprOp::Like: {
        // The context picks the fastest route: dictionary codes,
        // pre-evaluated vectors (post-join), or raw byte matching.
        const auto vals = ctx.likeValues(e);
        out.assign(vals.begin(), vals.end());
        return;
      }
      case ExprOp::SubqueryRef: {
        const auto vals = ctx.subqueryValues(e);
        out.assign(vals.begin(), vals.end());
        return;
      }
      case ExprOp::Not: {
        evalRec(*e.kids[0], ctx, out);
        for (auto &v : out)
            v = v == 0 ? 1 : 0;
        return;
      }
      case ExprOp::CaseWhen: {
        std::vector<std::int64_t> cond, then_v, else_v;
        evalRec(*e.kids[0], ctx, cond);
        evalRec(*e.kids[1], ctx, then_v);
        evalRec(*e.kids[2], ctx, else_v);
        out.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = cond[i] != 0 ? then_v[i] : else_v[i];
        return;
      }
      default: {
        std::vector<std::int64_t> rhs;
        evalRec(*e.kids[0], ctx, out);
        evalRec(*e.kids[1], ctx, rhs);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = exprApply(e.op, out[i], rhs[i]);
        return;
      }
    }
}

} // namespace

void
evalExprBatch(const Expr &e, BatchExprContext &ctx,
              std::vector<std::int64_t> &out)
{
    evalRec(e, ctx, out);
}

void
filterExprBatch(const Expr &e, BatchExprContext &ctx,
                SelectionVector &sel)
{
    // Fused compare+select: a comparison against a literal compacts
    // the selection straight off the gathered column.
    const bool cmp_root =
        e.op == ExprOp::Eq || e.op == ExprOp::Ne ||
        e.op == ExprOp::Lt || e.op == ExprOp::Le ||
        e.op == ExprOp::Gt || e.op == ExprOp::Ge;
    if (cmp_root) {
        const Expr *lhs = e.kids[0].get();
        const Expr *rhs = e.kids[1].get();
        if (lhs->op == ExprOp::Column &&
            rhs->op == ExprOp::IntLit) {
            simd::filterCompare(ctx.ints(lhs->col), sel, e.op,
                                rhs->lit);
            return;
        }
        if (lhs->op == ExprOp::IntLit &&
            rhs->op == ExprOp::Column) {
            // lit op val == val flip(op) lit.
            simd::filterCompare(ctx.ints(rhs->col), sel,
                                simd::flipCompare(e.op), lhs->lit);
            return;
        }
    }
    // Fused (negated) LIKE: dictionary codes when the column is
    // dict-encoded (pattern pre-evaluated once per distinct value),
    // raw char payload otherwise.
    const bool not_like =
        e.op == ExprOp::Not && e.kids[0]->op == ExprOp::Like;
    if (e.op == ExprOp::Like || not_like) {
        const Expr &like = not_like ? *e.kids[0] : e;
        if (const auto dv = ctx.dictLike(like.col, like.pattern)) {
            simd::filterDictCodes(dv->codes, sel, dv->lut, not_like);
            return;
        }
        std::uint32_t w = 0;
        const auto payload = ctx.chars(like.col, w);
        filterCharLike(payload, w, sel, like.pattern, not_like);
        return;
    }

    std::vector<std::int64_t> keep;
    evalRec(e, ctx, keep);
    simd::compactByNonzero(keep, sel);
}

void
filterCharLike(std::span<const std::uint8_t> chars,
               std::uint32_t width, SelectionVector &sel,
               std::string_view pattern, bool negate)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < sel.idx.size(); ++i) {
        const bool match =
            likeMatch(chars.subspan(i * width, width), pattern);
        sel.idx[n] = sel.idx[i];
        n += static_cast<std::size_t>(match != negate);
    }
    sel.idx.resize(n);
}

void
filterCharPrefix(std::span<const std::uint8_t> chars,
                 std::uint32_t width, SelectionVector &sel,
                 std::string_view prefix, bool negate)
{
    // A prefix longer than the column can never match (substr
    // semantics of the scalar path).
    const bool possible = prefix.size() <= width;
    std::size_t n = 0;
    for (std::size_t i = 0; i < sel.idx.size(); ++i) {
        const bool match =
            possible &&
            std::memcmp(chars.data() + i * width, prefix.data(),
                        prefix.size()) == 0;
        sel.idx[n] = sel.idx[i];
        n += static_cast<std::size_t>(match != negate);
    }
    sel.idx.resize(n);
}

} // namespace pushtap::olap
