#include "olap/plan.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::olap {

using workload::ChTable;

workload::ChTable
tableOf(const QueryPlan &plan, const ColRef &ref)
{
    if (ref.side == ColRef::kProbe)
        return plan.probe.table;
    return plan.joins.at(static_cast<std::size_t>(ref.side))
        .build.table;
}

std::set<std::pair<workload::ChTable, std::string>>
touchedColumns(const QueryPlan &plan)
{
    std::set<std::pair<ChTable, std::string>> touched;
    auto addInput = [&touched](const TableInput &in) {
        for (const auto &p : in.intPredicates)
            touched.emplace(in.table, p.column);
        for (const auto &p : in.charPredicates)
            touched.emplace(in.table, p.column);
    };
    auto addRef = [&touched, &plan](const ColRef &ref) {
        touched.emplace(tableOf(plan, ref), ref.column);
    };

    addInput(plan.probe);
    for (const auto &join : plan.joins) {
        addInput(join.build);
        for (const auto &[build_col, ref] : join.keys) {
            touched.emplace(join.build.table, build_col);
            addRef(ref);
        }
    }
    for (const auto &key : plan.groupBy)
        addRef(key);
    for (const auto &agg : plan.aggregates)
        addRef(agg.value);
    return touched;
}

std::set<std::string>
fusedProbeColumns(const QueryPlan &plan)
{
    std::set<std::string> cols;
    for (const auto &p : plan.probe.intPredicates)
        cols.insert(p.column);
    for (const auto &key : plan.groupBy)
        cols.insert(key.column);
    for (const auto &agg : plan.aggregates)
        cols.insert(agg.value.column);
    return cols;
}

namespace {

const format::TableSchema &
schemaOf(ChTable t)
{
    static const auto schemas = workload::chBenchmarkSchemas();
    return schemas[static_cast<std::size_t>(t)];
}

void
checkColumn(const QueryPlan &plan, ChTable t, const std::string &name,
            format::ColType type)
{
    const auto &s = schemaOf(t);
    if (!s.hasColumn(name))
        fatal("plan {}: table {} has no column {}", plan.name,
              s.name(), name);
    const auto &col = s.column(s.columnId(name));
    if (col.type != type)
        fatal("plan {}: column {}.{} has the wrong type", plan.name,
              s.name(), name);
}

/** Resolve @p ref against the probe table or joins [0, upto). */
void
checkRef(const QueryPlan &plan, const ColRef &ref, std::size_t upto,
         const char *what)
{
    if (ref.side == ColRef::kProbe) {
        checkColumn(plan, plan.probe.table, ref.column,
                    format::ColType::Int);
        return;
    }
    if (ref.side < 0 ||
        static_cast<std::size_t>(ref.side) >= upto)
        fatal("plan {}: {} references side {} (only the probe and "
              "{} earlier joins are in scope)",
              plan.name, what, ref.side, upto);
    const auto &join = plan.joins[static_cast<std::size_t>(ref.side)];
    if (join.kind != JoinKind::Inner)
        fatal("plan {}: {} references the payload of a non-inner "
              "join", plan.name, what);
    if (std::find(join.payload.begin(), join.payload.end(),
                  ref.column) == join.payload.end())
        fatal("plan {}: {} references column {} absent from join {} "
              "payload", plan.name, what, ref.column, ref.side);
}

void
checkInput(const QueryPlan &plan, const TableInput &in)
{
    // An empty range (lo > hi) is legal: it selects nothing, the
    // way a degenerate query window does.
    for (const auto &p : in.intPredicates)
        checkColumn(plan, in.table, p.column, format::ColType::Int);
    for (const auto &p : in.charPredicates)
        checkColumn(plan, in.table, p.column, format::ColType::Char);
}

} // namespace

void
validatePlan(const QueryPlan &plan)
{
    if (plan.name.empty())
        fatal("plan has no name");
    checkInput(plan, plan.probe);
    for (std::size_t k = 0; k < plan.joins.size(); ++k) {
        const auto &join = plan.joins[k];
        checkInput(plan, join.build);
        if (join.keys.empty())
            fatal("plan {}: join {} has no equality keys", plan.name,
                  k);
        for (const auto &[build_col, ref] : join.keys) {
            checkColumn(plan, join.build.table, build_col,
                        format::ColType::Int);
            checkRef(plan, ref, k, "join key");
        }
        for (const auto &col : join.payload)
            checkColumn(plan, join.build.table, col,
                        format::ColType::Int);
        if (join.kind != JoinKind::Inner && !join.payload.empty())
            fatal("plan {}: join {} is semi/anti but has a payload",
                  plan.name, k);
    }
    for (const auto &key : plan.groupBy)
        checkRef(plan, key, plan.joins.size(), "group key");
    for (const auto &agg : plan.aggregates)
        checkRef(plan, agg.value, plan.joins.size(), "aggregate");
    for (const auto &sk : plan.orderBy) {
        const std::size_t bound =
            sk.target == SortKey::Target::GroupKey
                ? plan.groupBy.size()
                : sk.target == SortKey::Target::Aggregate
                      ? plan.aggregates.size()
                      : 1;
        if (sk.target != SortKey::Target::Count && sk.index >= bound)
            fatal("plan {}: sort key index {} out of range",
                  plan.name, sk.index);
    }
}

namespace plans {

namespace {

/** The never-matching range (lo > hi selects nothing). */
IntRange
emptyRange(const char *column)
{
    return {column, 0, -1};
}

} // namespace

QueryPlan
q1(std::int64_t delivery_after)
{
    QueryPlan p;
    p.name = "Q1";
    p.probe.table = ChTable::OrderLine;
    // Strictly-greater-than as an inclusive range; nothing is
    // greater than INT64_MAX.
    p.probe.intPredicates = {
        delivery_after == std::numeric_limits<std::int64_t>::max()
            ? emptyRange("ol_delivery_d")
            : IntRange{"ol_delivery_d", delivery_after + 1,
                       std::numeric_limits<std::int64_t>::max()}};
    p.groupBy = {{ColRef::kProbe, "ol_number"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_quantity"}},
                    {AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q6(std::int64_t d_lo, std::int64_t d_hi, std::int64_t q_lo,
   std::int64_t q_hi)
{
    QueryPlan p;
    p.name = "Q6";
    p.probe.table = ChTable::OrderLine;
    // The engine's historical Q6 takes a half-open delivery range;
    // nothing is below INT64_MIN.
    p.probe.intPredicates = {
        d_hi == std::numeric_limits<std::int64_t>::min()
            ? emptyRange("ol_delivery_d")
            : IntRange{"ol_delivery_d", d_lo, d_hi - 1},
        {"ol_quantity", q_lo, q_hi}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q9(std::int64_t entry_lo, std::int64_t entry_hi)
{
    QueryPlan p;
    p.name = "Q9";
    p.probe.table = ChTable::OrderLine;

    // Tests rely on the item semi join staying join 0.
    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};

    // The supplying warehouse must stock the item (one STOCK row per
    // (warehouse, item) pair).
    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_i_id", {ColRef::kProbe, "ol_i_id"}},
                  {"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};

    // The owning order, restricted to the entry-date window (the
    // full CH Q9 buckets profit by order year). Joined on the full
    // composite order key: o_id alone is not unique across
    // districts (see Q12), which would make the window vacuous.
    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};
    orders.kind = JoinKind::Semi;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};

    p.joins = {std::move(items), std::move(stock),
               std::move(orders)};
    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q3(std::int64_t entry_after, std::string state_prefix)
{
    QueryPlan p;
    p.name = "Q3";
    p.probe.table = ChTable::OrderLine;

    JoinSpec pending;
    pending.build.table = ChTable::NewOrder;
    pending.kind = JoinKind::Semi;
    pending.keys = {{"no_o_id", {ColRef::kProbe, "ol_o_id"}},
                    {"no_d_id", {ColRef::kProbe, "ol_d_id"}},
                    {"no_w_id", {ColRef::kProbe, "ol_w_id"}}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", entry_after,
         std::numeric_limits<std::int64_t>::max()}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};
    orders.payload = {"o_c_id", "o_entry_d"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.charPredicates = {
        {"c_state", std::move(state_prefix), false}};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {1, "o_c_id"}},
                      {"c_d_id", {ColRef::kProbe, "ol_d_id"}},
                      {"c_w_id", {ColRef::kProbe, "ol_w_id"}}};

    p.joins = {std::move(pending), std::move(orders),
               std::move(customers)};
    p.groupBy = {{ColRef::kProbe, "ol_o_id"},
                 {ColRef::kProbe, "ol_d_id"},
                 {ColRef::kProbe, "ol_w_id"},
                 {1, "o_entry_d"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = 10;
    return p;
}

QueryPlan
q4(std::int64_t entry_lo, std::int64_t entry_hi,
   std::int64_t delivered_after)
{
    QueryPlan p;
    p.name = "Q4";
    p.probe.table = ChTable::Orders;
    p.probe.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};

    JoinSpec lines;
    lines.build.table = ChTable::OrderLine;
    lines.build.intPredicates = {
        {"ol_delivery_d", delivered_after,
         std::numeric_limits<std::int64_t>::max()}};
    lines.kind = JoinKind::Semi;
    lines.keys = {{"ol_o_id", {ColRef::kProbe, "o_id"}},
                  {"ol_d_id", {ColRef::kProbe, "o_d_id"}},
                  {"ol_w_id", {ColRef::kProbe, "o_w_id"}}};
    p.joins = {std::move(lines)};

    p.groupBy = {{ColRef::kProbe, "o_ol_cnt"}};
    return p;
}

QueryPlan
q12(std::int64_t delivery_lo, std::int64_t delivery_hi,
    std::int64_t carrier_lo, std::int64_t carrier_hi)
{
    QueryPlan p;
    p.name = "Q12";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", std::numeric_limits<std::int64_t>::min(),
         delivery_hi},
        {"o_carrier_id", carrier_lo, carrier_hi}};
    orders.kind = JoinKind::Inner;
    // Composite order key: o_id alone is not unique across
    // districts (each district's runtime counter overlaps the seed
    // id range), exactly why CH Q12 joins on the full triple.
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};
    orders.payload = {"o_ol_cnt"};
    p.joins = {std::move(orders)};

    p.groupBy = {{0, "o_ol_cnt"}};
    return p;
}

QueryPlan
q14(std::int64_t delivery_lo, std::int64_t delivery_hi)
{
    QueryPlan p;
    p.name = "Q14";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};
    p.joins = {std::move(items)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q19(std::int64_t q_lo, std::int64_t q_hi, std::int64_t w_lo,
    std::int64_t w_hi, std::int64_t price_lo, std::int64_t price_hi)
{
    QueryPlan p;
    p.name = "Q19";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {{"ol_quantity", q_lo, q_hi},
                             {"ol_w_id", w_lo, w_hi}};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.intPredicates = {{"i_price", price_lo, price_hi}};
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};
    p.joins = {std::move(items)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

} // namespace plans

} // namespace pushtap::olap
