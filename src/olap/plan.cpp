#include "olap/plan.hpp"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::olap {

using workload::ChTable;

workload::ChTable
tableOf(const QueryPlan &plan, const ColRef &ref)
{
    if (ref.side == ColRef::kProbe)
        return plan.probe.table;
    return plan.joins.at(static_cast<std::size_t>(ref.side))
        .build.table;
}

std::set<std::pair<workload::ChTable, std::string>>
touchedColumns(const QueryPlan &plan)
{
    std::set<std::pair<ChTable, std::string>> touched;
    auto addInput = [&touched](const TableInput &in) {
        for (const auto &p : in.intPredicates)
            touched.emplace(in.table, p.column);
        for (const auto &p : in.charPredicates)
            touched.emplace(in.table, p.column);
        // Input-local expressions reference the input's own table.
        for (const auto &e : in.exprPredicates)
            if (e)
                forEachColumnRef(
                    *e, [&touched, &in](const ColRef &ref, bool) {
                        touched.emplace(in.table, ref.column);
                    });
    };
    auto addRef = [&touched, &plan](const ColRef &ref) {
        touched.emplace(tableOf(plan, ref), ref.column);
    };

    addInput(plan.probe);
    for (const auto &join : plan.joins) {
        addInput(join.build);
        for (const auto &[build_col, ref] : join.keys) {
            touched.emplace(join.build.table, build_col);
            addRef(ref);
        }
    }
    for (const auto &sub : plan.subqueries) {
        addInput(sub.source);
        for (const auto &col : sub.groupBy)
            touched.emplace(sub.source.table, col);
        for (const auto &agg : sub.aggs)
            if (agg.value)
                forEachColumnRef(
                    *agg.value,
                    [&touched, &sub](const ColRef &ref, bool) {
                        touched.emplace(sub.source.table,
                                        ref.column);
                    });
        for (const auto &key : sub.keys)
            touched.emplace(plan.probe.table, key.column);
    }
    for (const auto &key : plan.groupBy)
        addRef(key);
    for (const auto &agg : plan.aggregates) {
        if (agg.expr)
            forEachColumnRef(*agg.expr,
                             [&addRef](const ColRef &ref, bool) {
                                 addRef(ref);
                             });
        else
            addRef(agg.value);
    }
    return touched;
}

std::set<std::string>
fusedProbeColumns(const QueryPlan &plan)
{
    std::set<std::string> cols;
    for (const auto &p : plan.probe.intPredicates)
        cols.insert(p.column);
    // Int columns an expression predicate streams in the fused pass;
    // Char LIKE targets stay on the CPU gather path like the closed
    // char-prefix predicates.
    for (const auto &e : plan.probe.exprPredicates)
        if (e)
            forEachColumnRef(*e, [&cols](const ColRef &ref,
                                         bool is_char) {
                if (!is_char)
                    cols.insert(ref.column);
            });
    // Subquery lookups read their probe-side key columns in the same
    // pass.
    for (const auto &sub : plan.subqueries)
        for (const auto &key : sub.keys)
            cols.insert(key.column);
    // Probe-keyed filter joins (semi/anti selection kernels) gather
    // their probe key columns inside the same fused loop. Join keys
    // are always Int columns. No-op for join-free plans, so the
    // original fused set is unchanged there.
    for (const auto &join : plan.joins)
        for (const auto &[build_col, ref] : join.keys)
            if (ref.side == ColRef::kProbe)
                cols.insert(ref.column);
    for (const auto &key : plan.groupBy)
        cols.insert(key.column);
    for (const auto &agg : plan.aggregates) {
        if (agg.expr)
            forEachColumnRef(*agg.expr, [&cols](const ColRef &ref,
                                                bool is_char) {
                if (!is_char && ref.side == ColRef::kProbe)
                    cols.insert(ref.column);
            });
        else
            cols.insert(agg.value.column);
    }
    return cols;
}

namespace {

const format::TableSchema &
schemaOf(ChTable t)
{
    static const auto schemas = workload::chBenchmarkSchemas();
    return schemas[static_cast<std::size_t>(t)];
}

void
checkColumn(const QueryPlan &plan, ChTable t, const std::string &name,
            format::ColType type)
{
    const auto &s = schemaOf(t);
    if (!s.hasColumn(name))
        fatal("plan {}: table {} has no column {}", plan.name,
              s.name(), name);
    const auto &col = s.column(s.columnId(name));
    if (col.type != type)
        fatal("plan {}: column {}.{} has the wrong type", plan.name,
              s.name(), name);
}

/** Resolve @p ref against the probe table or joins [0, upto). */
void
checkRef(const QueryPlan &plan, const ColRef &ref, std::size_t upto,
         const char *what)
{
    if (ref.side == ColRef::kProbe) {
        checkColumn(plan, plan.probe.table, ref.column,
                    format::ColType::Int);
        return;
    }
    if (ref.side < 0 ||
        static_cast<std::size_t>(ref.side) >= upto)
        fatal("plan {}: {} references side {} (only the probe and "
              "{} earlier joins are in scope)",
              plan.name, what, ref.side, upto);
    const auto &join = plan.joins[static_cast<std::size_t>(ref.side)];
    if (join.kind != JoinKind::Inner)
        fatal("plan {}: {} references the payload of a non-inner "
              "join", plan.name, what);
    if (std::find(join.payload.begin(), join.payload.end(),
                  ref.column) == join.payload.end())
        fatal("plan {}: {} references column {} absent from join {} "
              "payload", plan.name, what, ref.column, ref.side);
}

/**
 * Expression validation context: input-local expressions resolve
 * columns against one table (side must be kProbe); full-plan
 * (aggregate) expressions resolve through checkRef against the probe
 * and inner-join payloads.
 */
struct ExprScope
{
    bool inputLocal = true;
    workload::ChTable table{}; ///< inputLocal resolution target.
    std::size_t upto = 0;      ///< Full-plan: joins in scope.
    bool allowChar = true;     ///< LIKE permitted here.
    bool allowSubqueries = false;
    const char *what = "expression";
};

void
checkExpr(const QueryPlan &plan, const Expr &e,
          const ExprScope &scope)
{
    if (e.kids.size() != exprArity(e.op))
        fatal("plan {}: {} node '{}' has {} operands (needs {})",
              plan.name, scope.what, exprOpName(e.op), e.kids.size(),
              exprArity(e.op));
    for (const auto &k : e.kids) {
        if (!k)
            fatal("plan {}: {} has a null operand under '{}'",
                  plan.name, scope.what, exprOpName(e.op));
        checkExpr(plan, *k, scope);
    }
    switch (e.op) {
      case ExprOp::Column:
        if (scope.inputLocal) {
            if (e.col.side != ColRef::kProbe)
                fatal("plan {}: {} references side {} but is local "
                      "to one input table",
                      plan.name, scope.what, e.col.side);
            checkColumn(plan, scope.table, e.col.column,
                        format::ColType::Int);
        } else {
            checkRef(plan, e.col, scope.upto, scope.what);
        }
        break;
      case ExprOp::Like:
        if (!scope.allowChar)
            fatal("plan {}: {} may not contain LIKE (integer-only "
                  "context)",
                  plan.name, scope.what);
        if (e.pattern.empty())
            fatal("plan {}: {} has a LIKE with an empty pattern",
                  plan.name, scope.what);
        if (scope.inputLocal) {
            if (e.col.side != ColRef::kProbe)
                fatal("plan {}: {} LIKE references side {} but is "
                      "local to one input table",
                      plan.name, scope.what, e.col.side);
            checkColumn(plan, scope.table, e.col.column,
                        format::ColType::Char);
        } else {
            // Full-plan scope (aggregate expressions): LIKE may
            // target a probe Char column — join payloads carry
            // integers only, so build-side LIKE has nowhere to
            // resolve.
            if (e.col.side != ColRef::kProbe)
                fatal("plan {}: {} LIKE must target a probe Char "
                      "column (payloads are integer-only)",
                      plan.name, scope.what);
            checkColumn(plan, plan.probe.table, e.col.column,
                        format::ColType::Char);
        }
        break;
      case ExprOp::SubqueryRef: {
        if (!scope.allowSubqueries)
            fatal("plan {}: {} may not reference a subquery (only "
                  "probe filters can)",
                  plan.name, scope.what);
        if (e.subquery >= plan.subqueries.size())
            fatal("plan {}: {} references subquery {} (only {} "
                  "defined)",
                  plan.name, scope.what, e.subquery,
                  plan.subqueries.size());
        const auto &sub = plan.subqueries[e.subquery];
        if (e.aggIndex >= sub.aggs.size())
            fatal("plan {}: {} references aggregate {} of subquery "
                  "{} (only {} defined)",
                  plan.name, scope.what, e.aggIndex, e.subquery,
                  sub.aggs.size());
        break;
      }
      default:
        break;
    }
}

void
checkInput(const QueryPlan &plan, const TableInput &in,
           bool is_probe)
{
    // An empty range (lo > hi) is legal: it selects nothing, the
    // way a degenerate query window does.
    for (const auto &p : in.intPredicates)
        checkColumn(plan, in.table, p.column, format::ColType::Int);
    for (const auto &p : in.charPredicates)
        checkColumn(plan, in.table, p.column, format::ColType::Char);
    ExprScope scope;
    scope.table = in.table;
    scope.allowSubqueries = is_probe;
    scope.what = is_probe ? "probe filter" : "build filter";
    for (const auto &e : in.exprPredicates) {
        if (!e)
            fatal("plan {}: {} has a null expression predicate",
                  plan.name, scope.what);
        checkExpr(plan, *e, scope);
    }
}

void
checkSubquery(const QueryPlan &plan, const SubquerySpec &sub,
              std::size_t idx)
{
    checkInput(plan, sub.source, /*is_probe=*/false);
    if (sub.groupBy.size() > kMaxSubqueryGroupKeys)
        fatal("plan {}: subquery {} has {} group columns (max {})",
              plan.name, idx, sub.groupBy.size(),
              kMaxSubqueryGroupKeys);
    for (const auto &col : sub.groupBy)
        checkColumn(plan, sub.source.table, col,
                    format::ColType::Int);
    if (sub.aggs.empty())
        fatal("plan {}: subquery {} has no aggregates", plan.name,
              idx);
    ExprScope agg_scope;
    agg_scope.table = sub.source.table;
    agg_scope.what = "subquery aggregate";
    for (const auto &agg : sub.aggs) {
        if (!agg.value)
            fatal("plan {}: subquery {} has a null aggregate input",
                  plan.name, idx);
        checkExpr(plan, *agg.value, agg_scope);
    }
    if (sub.keys.size() != sub.groupBy.size())
        fatal("plan {}: subquery {} has {} probe keys for {} group "
              "columns",
              plan.name, idx, sub.keys.size(), sub.groupBy.size());
    for (const auto &key : sub.keys) {
        if (key.side != ColRef::kProbe)
            fatal("plan {}: subquery {} key references side {} "
                  "(pre-pass lookups read probe columns only)",
                  plan.name, idx, key.side);
        checkColumn(plan, plan.probe.table, key.column,
                    format::ColType::Int);
    }
}

} // namespace

void
validatePlan(const QueryPlan &plan)
{
    if (plan.name.empty())
        fatal("plan has no name");
    for (std::size_t s = 0; s < plan.subqueries.size(); ++s)
        checkSubquery(plan, plan.subqueries[s], s);
    checkInput(plan, plan.probe, /*is_probe=*/true);
    for (std::size_t k = 0; k < plan.joins.size(); ++k) {
        const auto &join = plan.joins[k];
        checkInput(plan, join.build, /*is_probe=*/false);
        if (join.keys.empty())
            fatal("plan {}: join {} has no equality keys", plan.name,
                  k);
        for (const auto &[build_col, ref] : join.keys) {
            checkColumn(plan, join.build.table, build_col,
                        format::ColType::Int);
            checkRef(plan, ref, k, "join key");
        }
        for (const auto &col : join.payload)
            checkColumn(plan, join.build.table, col,
                        format::ColType::Int);
        if (join.kind != JoinKind::Inner && !join.payload.empty())
            fatal("plan {}: join {} is semi/anti but has a payload",
                  plan.name, k);
    }
    for (const auto &key : plan.groupBy)
        checkRef(plan, key, plan.joins.size(), "group key");
    for (const auto &agg : plan.aggregates) {
        if (agg.expr) {
            // Full-plan context: probe columns, earlier inner-join
            // payloads, and probe-side LIKE (CASE WHEN ... LIKE
            // sums); no subqueries.
            ExprScope scope;
            scope.inputLocal = false;
            scope.upto = plan.joins.size();
            scope.what = "aggregate expression";
            checkExpr(plan, *agg.expr, scope);
        } else {
            checkRef(plan, agg.value, plan.joins.size(),
                     "aggregate");
        }
    }
    for (const auto &sk : plan.orderBy) {
        const std::size_t bound =
            sk.target == SortKey::Target::GroupKey
                ? plan.groupBy.size()
                : sk.target == SortKey::Target::Aggregate
                      ? plan.aggregates.size()
                      : 1;
        if (sk.target != SortKey::Target::Count && sk.index >= bound)
            fatal("plan {}: sort key index {} out of range",
                  plan.name, sk.index);
    }
}

namespace plans {

namespace {

/** The never-matching range (lo > hi selects nothing). */
IntRange
emptyRange(const char *column)
{
    return {column, 0, -1};
}

} // namespace

QueryPlan
q1(std::int64_t delivery_after)
{
    QueryPlan p;
    p.name = "Q1";
    p.probe.table = ChTable::OrderLine;
    // Strictly-greater-than as an inclusive range; nothing is
    // greater than INT64_MAX.
    p.probe.intPredicates = {
        delivery_after == std::numeric_limits<std::int64_t>::max()
            ? emptyRange("ol_delivery_d")
            : IntRange{"ol_delivery_d", delivery_after + 1,
                       std::numeric_limits<std::int64_t>::max()}};
    p.groupBy = {{ColRef::kProbe, "ol_number"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_quantity"}},
                    {AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q6(std::int64_t d_lo, std::int64_t d_hi, std::int64_t q_lo,
   std::int64_t q_hi)
{
    QueryPlan p;
    p.name = "Q6";
    p.probe.table = ChTable::OrderLine;
    // The engine's historical Q6 takes a half-open delivery range;
    // nothing is below INT64_MIN.
    p.probe.intPredicates = {
        d_hi == std::numeric_limits<std::int64_t>::min()
            ? emptyRange("ol_delivery_d")
            : IntRange{"ol_delivery_d", d_lo, d_hi - 1},
        {"ol_quantity", q_lo, q_hi}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q9(std::int64_t entry_lo, std::int64_t entry_hi)
{
    QueryPlan p;
    p.name = "Q9";
    p.probe.table = ChTable::OrderLine;

    // Tests rely on the item semi join staying join 0.
    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};

    // The supplying warehouse must stock the item (one STOCK row per
    // (warehouse, item) pair).
    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_i_id", {ColRef::kProbe, "ol_i_id"}},
                  {"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};

    // The owning order, restricted to the entry-date window (the
    // full CH Q9 buckets profit by order year). Joined on the full
    // composite order key: o_id alone is not unique across
    // districts (see Q12), which would make the window vacuous.
    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};
    orders.kind = JoinKind::Semi;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};

    p.joins = {std::move(items), std::move(stock),
               std::move(orders)};
    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q3(std::int64_t entry_after, std::string state_prefix)
{
    QueryPlan p;
    p.name = "Q3";
    p.probe.table = ChTable::OrderLine;

    JoinSpec pending;
    pending.build.table = ChTable::NewOrder;
    pending.kind = JoinKind::Semi;
    pending.keys = {{"no_o_id", {ColRef::kProbe, "ol_o_id"}},
                    {"no_d_id", {ColRef::kProbe, "ol_d_id"}},
                    {"no_w_id", {ColRef::kProbe, "ol_w_id"}}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", entry_after,
         std::numeric_limits<std::int64_t>::max()}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};
    orders.payload = {"o_c_id", "o_entry_d"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.charPredicates = {
        {"c_state", std::move(state_prefix), false}};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {1, "o_c_id"}},
                      {"c_d_id", {ColRef::kProbe, "ol_d_id"}},
                      {"c_w_id", {ColRef::kProbe, "ol_w_id"}}};

    p.joins = {std::move(pending), std::move(orders),
               std::move(customers)};
    p.groupBy = {{ColRef::kProbe, "ol_o_id"},
                 {ColRef::kProbe, "ol_d_id"},
                 {ColRef::kProbe, "ol_w_id"},
                 {1, "o_entry_d"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = 10;
    return p;
}

QueryPlan
q4(std::int64_t entry_lo, std::int64_t entry_hi,
   std::int64_t delivered_after)
{
    QueryPlan p;
    p.name = "Q4";
    p.probe.table = ChTable::Orders;
    p.probe.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};

    JoinSpec lines;
    lines.build.table = ChTable::OrderLine;
    lines.build.intPredicates = {
        {"ol_delivery_d", delivered_after,
         std::numeric_limits<std::int64_t>::max()}};
    lines.kind = JoinKind::Semi;
    lines.keys = {{"ol_o_id", {ColRef::kProbe, "o_id"}},
                  {"ol_d_id", {ColRef::kProbe, "o_d_id"}},
                  {"ol_w_id", {ColRef::kProbe, "o_w_id"}}};
    p.joins = {std::move(lines)};

    p.groupBy = {{ColRef::kProbe, "o_ol_cnt"}};
    return p;
}

QueryPlan
q12(std::int64_t delivery_lo, std::int64_t delivery_hi,
    std::int64_t carrier_lo, std::int64_t carrier_hi)
{
    QueryPlan p;
    p.name = "Q12";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", std::numeric_limits<std::int64_t>::min(),
         delivery_hi},
        {"o_carrier_id", carrier_lo, carrier_hi}};
    orders.kind = JoinKind::Inner;
    // Composite order key: o_id alone is not unique across
    // districts (each district's runtime counter overlaps the seed
    // id range), exactly why CH Q12 joins on the full triple.
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}},
                   {"o_d_id", {ColRef::kProbe, "ol_d_id"}},
                   {"o_w_id", {ColRef::kProbe, "ol_w_id"}}};
    orders.payload = {"o_ol_cnt"};
    p.joins = {std::move(orders)};

    p.groupBy = {{0, "o_ol_cnt"}};
    return p;
}

QueryPlan
q14(std::int64_t delivery_lo, std::int64_t delivery_hi)
{
    QueryPlan p;
    p.name = "Q14";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};
    p.joins = {std::move(items)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q19(std::int64_t q_lo, std::int64_t q_hi, std::int64_t w_lo,
    std::int64_t w_hi, std::int64_t price_lo, std::int64_t price_hi)
{
    QueryPlan p;
    p.name = "Q19";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {{"ol_quantity", q_lo, q_hi},
                             {"ol_w_id", w_lo, w_hi}};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.intPredicates = {{"i_price", price_lo, price_hi}};
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};
    p.joins = {std::move(items)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q2(std::string name_pattern)
{
    QueryPlan p;
    p.name = "Q2";
    p.probe.table = ChTable::Stock;

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.build.exprPredicates = {
        ex::like("i_name", std::move(name_pattern))};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "s_i_id"}}};
    p.joins = {std::move(items)};

    p.groupBy = {{ColRef::kProbe, "s_w_id"}};
    p.aggregates = {
        {AggKind::Min, {ColRef::kProbe, "s_quantity"}},
        {AggKind::Sum, {ColRef::kProbe, "s_ytd"}},
        {AggKind::Sum, {ColRef::kProbe, "s_order_cnt"}}};
    return p;
}

QueryPlan
q5(std::int64_t entry_after, std::string state_prefix)
{
    QueryPlan p;
    p.name = "Q5";
    p.probe.table = ChTable::OrderLine;

    // CH Q5 joins ORDERS on the bare order id; the composite-key
    // uniqueness refinement is deliberate to Q12/Q9 only.
    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", entry_after,
         std::numeric_limits<std::int64_t>::max()}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_c_id"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.intPredicates = {
        {"c_d_id", 0, 9},
        {"c_w_id", 0, std::numeric_limits<std::int64_t>::max()}};
    customers.build.charPredicates = {
        {"c_state", std::move(state_prefix), false}};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {0, "o_c_id"}}};

    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.build.intPredicates = {
        {"s_i_id", 0, std::numeric_limits<std::int64_t>::max()}};
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};

    p.joins = {std::move(orders), std::move(customers),
               std::move(stock)};
    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    return p;
}

QueryPlan
q7(std::int64_t entry_lo, std::int64_t entry_hi,
   std::string state_pattern)
{
    QueryPlan p;
    p.name = "Q7";
    p.probe.table = ChTable::OrderLine;

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_c_id"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.exprPredicates = {
        ex::like("c_state", std::move(state_pattern))};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {0, "o_c_id"}}};

    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.build.intPredicates = {
        {"s_i_id", 0, std::numeric_limits<std::int64_t>::max()}};
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};

    p.joins = {std::move(orders), std::move(customers),
               std::move(stock)};
    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q8(std::int64_t entry_lo, std::int64_t entry_hi,
   std::int64_t share_w_hi, std::string state_prefix)
{
    QueryPlan p;
    p.name = "Q8";
    p.probe.table = ChTable::OrderLine;

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_c_id"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.charPredicates = {
        {"c_state", std::move(state_prefix), false}};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {1, "o_c_id"}}};

    p.joins = {std::move(items), std::move(orders),
               std::move(customers)};
    // Market share as a CASE sum: revenue supplied by warehouses
    // [0, share_w_hi] next to the total revenue.
    AggSpec share;
    share.kind = AggKind::Sum;
    share.expr = ex::caseWhen(
        ex::le(ex::col("ol_supply_w_id"), ex::lit(share_w_hi)),
        ex::col("ol_amount"), ex::lit(0));
    p.aggregates = {std::move(share),
                    {AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q10(std::int64_t delivery_lo, std::int64_t delivery_hi,
    std::int64_t carrier_lo, std::int64_t carrier_hi,
    std::string state_prefix, std::string last_pattern,
    std::string city_pattern, std::string phone_pattern)
{
    QueryPlan p;
    p.name = "Q10";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_entry_d", std::numeric_limits<std::int64_t>::min(),
         delivery_hi},
        {"o_carrier_id", carrier_lo, carrier_hi}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_c_id"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.charPredicates = {
        {"c_state", std::move(state_prefix), false}};
    // A disjunctive LIKE pair plus a second conjunct: the shape the
    // closed char-prefix predicates cannot express.
    customers.build.exprPredicates = {
        ex::or_(ex::like("c_last", std::move(last_pattern)),
                ex::like("c_city", std::move(city_pattern))),
        ex::like("c_phone", std::move(phone_pattern))};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {0, "o_c_id"}}};

    p.joins = {std::move(orders), std::move(customers)};
    p.groupBy = {{0, "o_c_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = 20;
    return p;
}

QueryPlan
q11(std::uint64_t top)
{
    QueryPlan p;
    p.name = "Q11";
    p.probe.table = ChTable::Stock;
    p.probe.intPredicates = {
        {"s_w_id", 0, std::numeric_limits<std::int64_t>::max()}};
    p.groupBy = {{ColRef::kProbe, "s_i_id"}};
    // Inventory value weighted by order activity: an expression
    // aggregate folded inside the fused join-free scan.
    AggSpec value;
    value.kind = AggKind::Sum;
    value.expr = ex::mul(ex::col("s_quantity"),
                         ex::add(ex::lit(1),
                                 ex::col("s_order_cnt")));
    p.aggregates = {std::move(value)};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = top;
    return p;
}

QueryPlan
q13(std::int64_t carrier_lo, std::int64_t carrier_hi,
    std::uint64_t top)
{
    QueryPlan p;
    p.name = "Q13";
    p.probe.table = ChTable::Orders;
    p.probe.intPredicates = {
        {"o_carrier_id", carrier_lo, carrier_hi},
        {"o_id", 0, std::numeric_limits<std::int64_t>::max()}};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.intPredicates = {
        {"c_d_id", 0, 9},
        {"c_w_id", 0, std::numeric_limits<std::int64_t>::max()}};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {ColRef::kProbe, "o_c_id"}}};
    p.joins = {std::move(customers)};

    p.groupBy = {{ColRef::kProbe, "o_c_id"}};
    p.orderBy = {{SortKey::Target::Count, 0, true}};
    p.limit = top;
    return p;
}

QueryPlan
q15(std::int64_t delivery_lo, std::int64_t delivery_hi,
    std::uint64_t top)
{
    QueryPlan p;
    p.name = "Q15";
    p.probe.table = ChTable::OrderLine;
    p.probe.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};

    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_i_id", {ColRef::kProbe, "ol_i_id"}},
                  {"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};
    p.joins = {std::move(stock)};

    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = top;
    return p;
}

QueryPlan
q16(std::int64_t price_lo, std::int64_t price_hi,
    std::string data_not_pattern)
{
    QueryPlan p;
    p.name = "Q16";
    p.probe.table = ChTable::Stock;

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.intPredicates = {{"i_price", price_lo, price_hi}};
    items.build.exprPredicates = {
        ex::notLike("i_data", std::move(data_not_pattern))};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "s_i_id"}}};
    p.joins = {std::move(items)};

    p.groupBy = {{ColRef::kProbe, "s_w_id"}};
    p.orderBy = {{SortKey::Target::Count, 0, true}};
    return p;
}

QueryPlan
q17()
{
    QueryPlan p;
    p.name = "Q17";
    p.probe.table = ChTable::OrderLine;

    // Per-item quantity statistics, materialized before the probe
    // pass: slot 0 = SUM(ol_quantity), slot 1 = COUNT(*).
    SubquerySpec stats;
    stats.source.table = ChTable::OrderLine;
    stats.groupBy = {"ol_i_id"};
    stats.aggs = {{AggKind::Sum, ex::col("ol_quantity")},
                  {AggKind::Sum, ex::lit(1)}};
    stats.keys = {{ColRef::kProbe, "ol_i_id"}};
    p.subqueries = {std::move(stats)};

    // qty < 0.2 * AVG(qty) per item, exactly in integers:
    // 5 * qty * count < sum.
    p.probe.exprPredicates = {
        ex::lt(ex::mul(ex::lit(5),
                       ex::mul(ex::col("ol_quantity"),
                               ex::subq(0, 1))),
               ex::subq(0, 0))};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "ol_i_id"}}};
    p.joins = {std::move(items)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    return p;
}

QueryPlan
q18(std::int64_t entry_lo, std::int64_t entry_hi,
    std::string last_pattern, std::uint64_t top)
{
    QueryPlan p;
    p.name = "Q18";
    p.probe.table = ChTable::OrderLine;

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {{"o_entry_d", entry_lo, entry_hi}};
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_c_id", "o_ol_cnt"};

    JoinSpec customers;
    customers.build.table = ChTable::Customer;
    customers.build.exprPredicates = {
        ex::like("c_last", std::move(last_pattern))};
    customers.kind = JoinKind::Semi;
    customers.keys = {{"c_id", {0, "o_c_id"}}};

    p.joins = {std::move(orders), std::move(customers)};
    p.groupBy = {{0, "o_c_id"}, {0, "o_ol_cnt"}};
    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "ol_amount"}}};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    p.limit = top;
    return p;
}

QueryPlan
q20(std::int64_t delivery_lo, std::int64_t delivery_hi)
{
    QueryPlan p;
    p.name = "Q20";
    p.probe.table = ChTable::Stock;

    // Quantity shipped per item inside the delivery window.
    SubquerySpec shipped;
    shipped.source.table = ChTable::OrderLine;
    shipped.source.intPredicates = {
        {"ol_delivery_d", delivery_lo, delivery_hi}};
    shipped.groupBy = {"ol_i_id"};
    shipped.aggs = {{AggKind::Sum, ex::col("ol_quantity")}};
    shipped.keys = {{ColRef::kProbe, "s_i_id"}};
    p.subqueries = {std::move(shipped)};

    // Excess stock: s_quantity > 0.5 * shipped, in integers. Items
    // never shipped in the window aggregate to 0, so any stocked
    // warehouse qualifies — the promotion-candidate reading.
    p.probe.exprPredicates = {
        ex::gt(ex::mul(ex::lit(2), ex::col("s_quantity")),
               ex::subq(0, 0))};

    JoinSpec items;
    items.build.table = ChTable::Item;
    items.build.charPredicates = {{"i_data", "ORIGINAL", false}};
    items.kind = JoinKind::Semi;
    items.keys = {{"i_id", {ColRef::kProbe, "s_i_id"}}};
    p.joins = {std::move(items)};

    p.groupBy = {{ColRef::kProbe, "s_w_id"}};
    return p;
}

QueryPlan
q21(std::int64_t delay)
{
    QueryPlan p;
    p.name = "Q21";
    p.probe.table = ChTable::OrderLine;

    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.kind = JoinKind::Inner;
    orders.keys = {{"o_id", {ColRef::kProbe, "ol_o_id"}}};
    orders.payload = {"o_entry_d"};

    JoinSpec stock;
    stock.build.table = ChTable::Stock;
    stock.build.intPredicates = {
        {"s_i_id", 0, std::numeric_limits<std::int64_t>::max()}};
    stock.kind = JoinKind::Semi;
    stock.keys = {{"s_w_id", {ColRef::kProbe, "ol_supply_w_id"}}};

    p.joins = {std::move(orders), std::move(stock)};
    p.groupBy = {{ColRef::kProbe, "ol_supply_w_id"}};
    // Late-delivery count per supplier warehouse: a CASE sum whose
    // condition compares a probe column against an inner-join
    // payload column.
    AggSpec late;
    late.kind = AggKind::Sum;
    late.expr = ex::caseWhen(
        ex::gt(ex::col("ol_delivery_d"),
               ex::add(ex::col(0, "o_entry_d"), ex::lit(delay))),
        ex::lit(1), ex::lit(0));
    p.aggregates = {std::move(late)};
    p.orderBy = {{SortKey::Target::Aggregate, 0, true}};
    return p;
}

QueryPlan
q22(std::string phone_pattern, std::int64_t balance_lo)
{
    QueryPlan p;
    p.name = "Q22";
    p.probe.table = ChTable::Customer;
    p.probe.intPredicates = {
        {"c_balance", balance_lo,
         std::numeric_limits<std::int64_t>::max()}};
    p.probe.exprPredicates = {
        ex::like("c_phone", std::move(phone_pattern))};

    // Customers with no orders at all (NOT EXISTS).
    JoinSpec orders;
    orders.build.table = ChTable::Orders;
    orders.build.intPredicates = {
        {"o_id", 0, std::numeric_limits<std::int64_t>::max()}};
    orders.kind = JoinKind::Anti;
    orders.keys = {{"o_c_id", {ColRef::kProbe, "c_id"}}};
    p.joins = {std::move(orders)};

    p.aggregates = {{AggKind::Sum, {ColRef::kProbe, "c_balance"}}};
    return p;
}

} // namespace plans

} // namespace pushtap::olap
