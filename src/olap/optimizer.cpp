#include "olap/optimizer.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/worker_pool.hpp"
#include "workload/ch_schema.hpp"

namespace pushtap::olap {

using workload::ChTable;

namespace {

const char *
kindName(JoinKind k)
{
    switch (k) {
      case JoinKind::Inner: return "inner";
      case JoinKind::Semi: return "semi";
      case JoinKind::Anti: return "anti";
    }
    return "?";
}

const char *
aggName(AggKind k)
{
    switch (k) {
      case AggKind::Sum: return "sum";
      case AggKind::Min: return "min";
      case AggKind::Max: return "max";
    }
    return "?";
}

std::string
boundStr(std::int64_t v)
{
    if (v == std::numeric_limits<std::int64_t>::min())
        return "-inf";
    if (v == std::numeric_limits<std::int64_t>::max())
        return "+inf";
    return std::to_string(v);
}

std::string
refStr(const ColRef &ref)
{
    if (ref.side == ColRef::kProbe)
        return "probe." + ref.column;
    return "j" + std::to_string(ref.side) + "." + ref.column;
}

const char *
opSymbol(ExprOp op)
{
    switch (op) {
      case ExprOp::Add: return "+";
      case ExprOp::Sub: return "-";
      case ExprOp::Mul: return "*";
      case ExprOp::Div: return "/";
      case ExprOp::Eq: return "==";
      case ExprOp::Ne: return "!=";
      case ExprOp::Lt: return "<";
      case ExprOp::Le: return "<=";
      case ExprOp::Gt: return ">";
      case ExprOp::Ge: return ">=";
      case ExprOp::And: return "&&";
      case ExprOp::Or: return "||";
      default: return "?";
    }
}

std::string
exprStr(const Expr &e)
{
    switch (e.op) {
      case ExprOp::IntLit:
        return std::to_string(e.lit);
      case ExprOp::Column:
        return e.col.side == ColRef::kProbe ? e.col.column
                                            : refStr(e.col);
      case ExprOp::Like:
        return (e.col.side == ColRef::kProbe ? e.col.column
                                             : refStr(e.col)) +
               " like \"" + e.pattern + "\"";
      case ExprOp::SubqueryRef:
        return "s" + std::to_string(e.subquery) + ".agg" +
               std::to_string(e.aggIndex);
      case ExprOp::Not:
        return "!(" + exprStr(*e.kids[0]) + ")";
      case ExprOp::CaseWhen:
        return "case(" + exprStr(*e.kids[0]) + ", " +
               exprStr(*e.kids[1]) + ", " + exprStr(*e.kids[2]) +
               ")";
      default:
        return "(" + exprStr(*e.kids[0]) + " " + opSymbol(e.op) +
               " " + exprStr(*e.kids[1]) + ")";
    }
}

void
dumpInput(std::ostringstream &os, const TableInput &in,
          const char *indent)
{
    for (const auto &p : in.intPredicates)
        os << indent << "where " << p.column << " in ["
           << boundStr(p.lo) << ", " << boundStr(p.hi) << "]\n";
    for (const auto &p : in.charPredicates)
        os << indent << "where " << (p.negate ? "!" : "")
           << "prefix(" << p.column << ", \"" << p.prefix << "\")\n";
    for (const auto &e : in.exprPredicates)
        if (e)
            os << indent << "where " << exprStr(*e) << "\n";
}

std::string
nsStr(TimeNs ns)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.1f", ns);
    return buf;
}

/**
 * Clone @p e with every payload-side column reference remapped
 * through @p new_side (new_side[old join index] = new join index).
 * Returns @p e itself when no reference moves — plans share
 * expression subtrees freely, so untouched trees stay shared.
 */
ExprPtr
remapExprSides(const ExprPtr &e, const std::vector<int> &new_side)
{
    if (!e)
        return e;
    bool moves = false;
    forEachColumnRef(*e, [&](const ColRef &ref, bool) {
        if (ref.side >= 0 &&
            new_side[static_cast<std::size_t>(ref.side)] != ref.side)
            moves = true;
    });
    if (!moves)
        return e;
    auto clone = [&new_side](auto &&self,
                             const Expr &src) -> std::shared_ptr<Expr> {
        auto out = std::make_shared<Expr>(src);
        if ((out->op == ExprOp::Column || out->op == ExprOp::Like) &&
            out->col.side >= 0)
            out->col.side =
                new_side[static_cast<std::size_t>(out->col.side)];
        for (auto &kid : out->kids)
            if (kid)
                kid = self(self, *kid);
        return out;
    };
    return clone(clone, *e);
}

std::string
summaryLine(const OptimizedQuery &oq)
{
    std::string s = "order=";
    if (oq.joinsReordered == 0) {
        s += "hand";
    } else {
        s += "[";
        for (std::size_t p = 0; p < oq.joinOrder.size(); ++p) {
            if (p)
                s += ",";
            s += std::to_string(oq.joinOrder[p]);
        }
        s += "]";
    }
    s += " demoted=" + std::to_string(oq.joinsDemoted);
    s += " cpuScans=" + std::to_string(oq.cpuPlacements.size());
    s += oq.fuseProbeScans ? " fused" : " unfused";
    s += " shards=" + std::to_string(oq.shards);
    s += " workers=" + std::to_string(oq.workers);
    s += " morsel=" + std::to_string(oq.morselRows);
    return s;
}

} // namespace

QueryPlan
pricingBasis(const QueryPlan &hand_built, const OptimizedQuery &oq)
{
    QueryPlan basis = hand_built;
    for (std::size_t k = 0; k < basis.joins.size(); ++k) {
        if (!oq.demoted[k])
            continue;
        basis.joins[k].kind = JoinKind::Semi;
        basis.joins[k].payload.clear();
    }
    return basis;
}

std::string
joinSignature(const QueryPlan &plan, std::size_t join_idx)
{
    const auto &join = plan.joins.at(join_idx);
    std::string sig = workload::chTableName(join.build.table);
    sig += "|";
    sig += kindName(join.kind);
    for (const auto &[build_col, ref] : join.keys) {
        sig += "|";
        sig += build_col;
        sig += "=";
        sig += workload::chTableName(tableOf(plan, ref));
        sig += ".";
        sig += ref.column;
    }
    return sig;
}

std::string
describePlan(const QueryPlan &plan)
{
    std::ostringstream os;
    os << "plan " << plan.name << "\n";
    os << "  probe " << workload::chTableName(plan.probe.table)
       << "\n";
    dumpInput(os, plan.probe, "    ");
    for (std::size_t s = 0; s < plan.subqueries.size(); ++s) {
        const auto &sub = plan.subqueries[s];
        os << "  subquery s" << s << ": "
           << workload::chTableName(sub.source.table);
        if (!sub.groupBy.empty()) {
            os << " group by (";
            for (std::size_t i = 0; i < sub.groupBy.size(); ++i)
                os << (i ? ", " : "") << sub.groupBy[i];
            os << ")";
        }
        os << "\n";
        dumpInput(os, sub.source, "    ");
        for (const auto &agg : sub.aggs)
            os << "    agg " << aggName(agg.kind) << "("
               << exprStr(*agg.value) << ")\n";
        os << "    keyed on (";
        for (std::size_t i = 0; i < sub.keys.size(); ++i)
            os << (i ? ", " : "") << refStr(sub.keys[i]);
        os << ")\n";
    }
    for (std::size_t k = 0; k < plan.joins.size(); ++k) {
        const auto &join = plan.joins[k];
        os << "  join j" << k << ": " << kindName(join.kind) << " "
           << workload::chTableName(join.build.table) << " on ";
        for (std::size_t i = 0; i < join.keys.size(); ++i) {
            const auto &[build_col, ref] = join.keys[i];
            os << (i ? ", " : "") << build_col << " == "
               << refStr(ref);
        }
        os << "\n";
        dumpInput(os, join.build, "    ");
        if (!join.payload.empty()) {
            os << "    payload (";
            for (std::size_t i = 0; i < join.payload.size(); ++i)
                os << (i ? ", " : "") << join.payload[i];
            os << ")\n";
        }
    }
    if (!plan.groupBy.empty()) {
        os << "  group by ";
        for (std::size_t i = 0; i < plan.groupBy.size(); ++i)
            os << (i ? ", " : "") << refStr(plan.groupBy[i]);
        os << "\n";
    }
    for (const auto &agg : plan.aggregates) {
        os << "  agg " << aggName(agg.kind) << "(";
        if (agg.expr)
            os << exprStr(*agg.expr);
        else
            os << refStr(agg.value);
        os << ")\n";
    }
    if (!plan.orderBy.empty()) {
        os << "  order by ";
        for (std::size_t i = 0; i < plan.orderBy.size(); ++i) {
            const auto &sk = plan.orderBy[i];
            os << (i ? ", " : "");
            switch (sk.target) {
              case SortKey::Target::GroupKey:
                os << "key" << sk.index;
                break;
              case SortKey::Target::Aggregate:
                os << "agg" << sk.index;
                break;
              case SortKey::Target::Count:
                os << "count";
                break;
            }
            os << (sk.descending ? " desc" : " asc");
        }
        os << "\n";
    }
    if (plan.limit != 0)
        os << "  limit " << plan.limit << "\n";
    return os.str();
}

std::string
describePlan(const QueryPlan &hand_built, const OptimizedQuery &oq)
{
    std::ostringstream os;
    os << describePlan(oq.plan);
    os << "optimizer\n";
    if (oq.joinsReordered == 0) {
        os << "  join order: hand-built\n";
    } else {
        os << "  join order:";
        for (std::size_t p = 0; p < oq.joinOrder.size(); ++p)
            os << " j" << p << "<-hand j" << oq.joinOrder[p];
        os << "\n";
    }
    if (oq.joinsDemoted > 0) {
        os << "  demoted inner->semi: hand";
        for (std::size_t k = 0; k < oq.demoted.size(); ++k)
            if (oq.demoted[k])
                os << " j" << k;
        os << " (payload unread, keys cover the primary key)\n";
    }
    if (!oq.cpuPlacements.empty()) {
        os << "  cpu gather scans:";
        for (const auto &site : oq.cpuPlacements)
            os << " " << site.table << "." << site.column;
        os << "\n";
    }
    os << "  probe pass priced "
       << (oq.fuseProbeScans ? "fused" : "per-operator") << "\n";
    os << "  knobs: shards=" << oq.shards
       << " workers=" << oq.workers
       << " morselRows=" << oq.morselRows << "\n";
    os << "  selectivities: "
       << (oq.usedObservedStats ? "observed (stats cache)"
                                : "cardinality heuristics")
       << "\n";
    os << "  priced: chosen=" << nsStr(oq.pricedChosenNs)
       << " ns, hand-built=" << nsStr(oq.pricedHandBuiltNs)
       << " ns (" << hand_built.name << ")\n";
    return os.str();
}

OptimizedQuery
OlapEngine::optimizePlan(const QueryPlan &plan) const
{
    validatePlan(plan);

    OptimizedQuery oq;
    oq.plan = plan;
    const std::size_t njoins = plan.joins.size();
    oq.demoted.assign(njoins, 0);
    oq.joinOrder.resize(njoins);
    std::iota(oq.joinOrder.begin(), oq.joinOrder.end(),
              std::size_t{0});

    const auto &probe_tbl = db_.table(plan.probe.table);
    const std::uint64_t probe_rows =
        std::max<std::uint64_t>(1, scannedDataRows(probe_tbl) +
                                       probe_tbl.versions()
                                           .deltaUsed());

    // ---- Pass 1: inner-to-semi join demotion -------------------
    // Valid when (a) no downstream reference reads the payload and
    // (b) the equality keys cover the build table's primary key: the
    // MVCC snapshot exposes one visible version per logical row, so
    // at most one build row matches any probe row and the inner
    // expansion is exactly a semi filter.
    std::vector<char> payload_read(njoins, 0);
    auto mark = [&payload_read](const ColRef &ref) {
        if (ref.side >= 0)
            payload_read[static_cast<std::size_t>(ref.side)] = 1;
    };
    for (const auto &join : plan.joins)
        for (const auto &[build_col, ref] : join.keys)
            mark(ref);
    for (const auto &key : plan.groupBy)
        mark(key);
    for (const auto &agg : plan.aggregates) {
        if (agg.expr)
            forEachColumnRef(*agg.expr,
                             [&mark](const ColRef &ref, bool) {
                                 mark(ref);
                             });
        else
            mark(agg.value);
    }
    for (std::size_t k = 0; k < njoins; ++k) {
        auto &join = oq.plan.joins[k];
        if (join.kind != JoinKind::Inner || payload_read[k])
            continue;
        const auto pk = workload::chPrimaryKey(join.build.table);
        if (pk.empty())
            continue;
        const bool covered = std::all_of(
            pk.begin(), pk.end(), [&join](const std::string &col) {
                return std::any_of(
                    join.keys.begin(), join.keys.end(),
                    [&col](const auto &key) {
                        return key.first == col;
                    });
            });
        if (!covered)
            continue;
        join.kind = JoinKind::Semi;
        join.payload.clear();
        oq.demoted[k] = 1;
        ++oq.joinsDemoted;
    }

    const PlanStats *stats = planStats(plan.name);

    // ---- Pass 2: join reorder ----------------------------------
    // Rank valid permutations by modelled row flow (sum of rows
    // entering each join). Selectivities come from the stats cache
    // when this plan ran optimized before (matched by join
    // signature, so they survive past reorders), from build/probe
    // cardinality heuristics otherwise. A permutation is valid when
    // every payload reference in a join's keys resolves to an
    // earlier position — filter-join reordering is selection
    // commutation and inner reordering Cartesian commutation, so
    // results are byte-identical for every valid order.
    if (njoins >= 2 && njoins <= 5) {
        std::vector<double> sel(njoins, 1.0);
        for (std::size_t k = 0; k < njoins; ++k) {
            const auto &join = oq.plan.joins[k];
            bool observed = false;
            if (stats != nullptr) {
                const auto it =
                    stats->joins.find(joinSignature(oq.plan, k));
                if (it != stats->joins.end() && it->second.in > 0) {
                    sel[k] =
                        static_cast<double>(it->second.out) /
                        static_cast<double>(it->second.in);
                    observed = true;
                    oq.usedObservedStats = true;
                }
            }
            if (!observed) {
                const double ratio =
                    static_cast<double>(
                        db_.table(join.build.table).usedDataRows()) /
                    static_cast<double>(probe_rows);
                switch (join.kind) {
                  case JoinKind::Semi:
                    sel[k] = std::min(1.0, ratio);
                    break;
                  case JoinKind::Anti:
                    sel[k] = std::clamp(1.0 - ratio, 0.0, 1.0);
                    break;
                  case JoinKind::Inner:
                    sel[k] = 1.0;
                    break;
                }
            }
        }
        const double rows0 =
            stats != nullptr && stats->runs > 0
                ? static_cast<double>(stats->probeFiltered)
                : static_cast<double>(probe_rows);
        std::vector<std::vector<std::size_t>> deps(njoins);
        for (std::size_t k = 0; k < njoins; ++k)
            for (const auto &[build_col, ref] :
                 oq.plan.joins[k].keys)
                if (ref.side >= 0)
                    deps[k].push_back(
                        static_cast<std::size_t>(ref.side));

        std::vector<std::size_t> identity = oq.joinOrder;
        std::vector<std::size_t> best = identity;
        auto flowCost = [&](const std::vector<std::size_t> &order) {
            double rows = rows0, cost = 0.0;
            for (const std::size_t k : order) {
                cost += rows;
                rows *= sel[k];
            }
            return cost;
        };
        double best_cost = flowCost(identity);
        std::vector<std::size_t> pos(njoins);
        std::vector<std::size_t> perm = identity;
        do {
            for (std::size_t p = 0; p < njoins; ++p)
                pos[perm[p]] = p;
            bool ok = true;
            for (std::size_t k = 0; k < njoins && ok; ++k)
                for (const std::size_t d : deps[k])
                    if (pos[d] >= pos[k]) {
                        ok = false;
                        break;
                    }
            if (!ok)
                continue;
            const double c = flowCost(perm);
            // Strictly better only: ties keep the hand-built order
            // (perm enumeration starts at the identity), so a plan
            // with indistinguishable orders is left untouched.
            if (c < best_cost - 1e-9) {
                best_cost = c;
                best = perm;
            }
        } while (
            std::next_permutation(perm.begin(), perm.end()));

        if (best != identity) {
            std::vector<int> new_side(njoins);
            for (std::size_t p = 0; p < njoins; ++p)
                new_side[best[p]] = static_cast<int>(p);
            std::vector<JoinSpec> reordered;
            reordered.reserve(njoins);
            for (std::size_t p = 0; p < njoins; ++p)
                reordered.push_back(
                    std::move(oq.plan.joins[best[p]]));
            for (auto &join : reordered)
                for (auto &[build_col, ref] : join.keys)
                    if (ref.side >= 0)
                        ref.side = new_side[static_cast<std::size_t>(
                            ref.side)];
            oq.plan.joins = std::move(reordered);
            for (auto &key : oq.plan.groupBy)
                if (key.side >= 0)
                    key.side = new_side[static_cast<std::size_t>(
                        key.side)];
            for (auto &agg : oq.plan.aggregates) {
                if (agg.expr)
                    agg.expr = remapExprSides(agg.expr, new_side);
                else if (agg.value.side >= 0)
                    agg.value.side =
                        new_side[static_cast<std::size_t>(
                            agg.value.side)];
            }
            oq.joinOrder = best;
            for (std::size_t p = 0; p < njoins; ++p)
                if (best[p] != p)
                    ++oq.joinsReordered;
        }
    }

    // ---- Pass 3: scan placement and probe-pass fusion ----------
    // Greedy whole-plan pricing: demote one PIM-eligible scan site
    // at a time to the CPU gather path, keeping the demotion only
    // when the priced total strictly drops — the runtime Eq. (3)
    // crossover decided against the actual ScanCost schedules, not
    // a closed form. The fused-probe-pass pricing alternative runs
    // its own greedy pass and wins only when strictly cheaper. The
    // decisions are priced over the hand-built join order (pricing
    // charges per join independently of position), which keeps the
    // chosen <= hand-built comparison exact under float summation.
    const QueryPlan basis = pricingBasis(plan, oq);
    auto priceChoice = [&](bool fuse, const PlacementSet &placements) {
        const QueryReport r =
            pricePlan(basis, fuse, &placements, probe_rows);
        return r.pimNs + r.cpuNs;
    };
    std::vector<ScanSite> candidates;
    for (const auto &[table, column] : touchedColumns(basis)) {
        const auto &tbl = db_.table(table);
        const ColumnId c = tbl.schema().columnId(column);
        if (tbl.schema().column(c).type == format::ColType::Int &&
            tbl.layout().singlePlacement(c) != nullptr)
            candidates.push_back(
                ScanSite{tbl.schema().name(), column});
    }
    auto greedyPlacements = [&](bool fuse) {
        PlacementSet set;
        double cost = priceChoice(fuse, set);
        for (const auto &site : candidates) {
            PlacementSet trial = set;
            trial.insert(site);
            const double c = priceChoice(fuse, trial);
            if (c < cost) {
                set = std::move(trial);
                cost = c;
            }
        }
        return std::make_pair(std::move(set), cost);
    };
    auto [unfused_set, unfused_cost] = greedyPlacements(false);
    oq.cpuPlacements = std::move(unfused_set);
    oq.pricedChosenNs = unfused_cost;
    if (planFusesProbePass(basis) &&
        !fusedProbeColumns(basis).empty()) {
        auto [fused_set, fused_cost] = greedyPlacements(true);
        if (fused_cost < unfused_cost) {
            oq.fuseProbeScans = true;
            oq.cpuPlacements = std::move(fused_set);
            oq.pricedChosenNs = fused_cost;
        }
    }
    const bool hand_fuse = cfg_.fuseScans &&
                           planFusesProbePass(plan) &&
                           !fusedProbeColumns(plan).empty();
    const QueryReport hand =
        pricePlan(plan, hand_fuse, nullptr, probe_rows);
    oq.pricedHandBuiltNs = hand.pimNs + hand.cpuNs;

    // ---- Pass 4: host knob resolution --------------------------
    // User-set > derived > default, per knob. Purely host-side: the
    // pricing decomposition stays at the configured shard count and
    // results are invariant for every shards x workers x morselRows
    // combination (deterministic ordered merges), so tuning cannot
    // perturb either answers or the modelled report.
    std::uint32_t workers = cfg_.workers;
    if (workers <= 1)
        workers = WorkerPool::hardwareWorkers();
    oq.workers = workers;
    std::uint32_t shards = cfg_.shards;
    if (shards == 1 && workers > 1) {
        // One shard per worker, capped so each shard keeps at least
        // four morsels of probe rows; largest power of two below
        // both (1 when the probe is too small to split).
        const std::uint64_t by_rows =
            probe_rows /
            (4ull * std::max<std::uint32_t>(1, cfg_.morselRows));
        const std::uint64_t target =
            std::min<std::uint64_t>(workers, by_rows);
        std::uint32_t s = 1;
        while (2ull * s <= target)
            s *= 2;
        shards = s;
    }
    oq.shards = shards;
    std::uint32_t morsel = cfg_.morselRows;
    if (morselAuto_) {
        // Shrink a defaulted morsel (never an explicit one) while a
        // shard cannot even fill two morsels — small tables then
        // still spread across the shard fan-out.
        while (morsel > 64 &&
               static_cast<std::uint64_t>(morsel) * 2ull * shards >
                   probe_rows)
            morsel /= 2;
    }
    oq.morselRows = morsel;

    return oq;
}

QueryReport
OlapEngine::runQueryOptimized(const QueryPlan &plan,
                              QueryResult *result,
                              PlanExecution *exec_out)
{
    OptimizedQuery oq = optimizePlan(plan);

    QueryReport rep;
    rep.name = plan.name;
    rep.consistencyNs = takeConsistency();

    ExecOptions opts;
    opts.shards = oq.shards;
    opts.workers = oq.workers;
    opts.morselRows = oq.morselRows;
    // Group-accumulator capture for the result cache. The optimizer
    // only applies result-preserving transforms, so the accumulators
    // of the chosen plan equal the hand-built plan's and can seed
    // later delta-incremental runs of either.
    opts.captureGroups = exec_out != nullptr;
    opts.pool = pool_.get();
    if (opts.pool == nullptr && oq.workers > 1) {
        if (!optPool_)
            optPool_ = std::make_unique<WorkerPool>(oq.workers);
        opts.pool = optPool_.get();
    }
    auto exec = executePlan(db_, oq.plan, opts);
    rep.rowsVisible = exec.rowsVisible;
    rep.fusedScanColumns = exec.fusedScanColumns;

    // Close the loop: fold the measured selectivities into the
    // per-plan stats cache the next optimizePlan() reads. Joins are
    // keyed by signature, so the observation survives reordering.
    if (exec.stats.collected) {
        auto &ps = statsCache_[plan.name];
        ++ps.runs;
        ps.probeVisible = exec.stats.probeVisible;
        ps.probeFiltered = exec.stats.probeFiltered;
        for (std::size_t k = 0; k < oq.plan.joins.size(); ++k) {
            auto &jo = ps.joins[joinSignature(oq.plan, k)];
            jo.in = exec.stats.joins[k].in;
            jo.out = exec.stats.joins[k].out;
        }
        ps.conjuncts = exec.stats.conjuncts;
    }

    // Price the chosen decisions in the hand-built summation order
    // (pricing charges per join independently of position) so the
    // chosen <= hand-built guarantee is exact, and the hand-built
    // plan exactly as plain runQuery would have priced it.
    const QueryPlan basis = pricingBasis(plan, oq);
    const bool chosen_fuse =
        oq.fuseProbeScans && exec.fusedScanColumns > 0;
    QueryReport chosen = pricePlan(basis, chosen_fuse,
                                   &oq.cpuPlacements,
                                   exec.rowsVisible);
    const bool hand_fuse = cfg_.fuseScans &&
                           planFusesProbePass(plan) &&
                           !fusedProbeColumns(plan).empty();
    const QueryReport hand =
        pricePlan(plan, hand_fuse, nullptr, exec.rowsVisible);

    rep.pimNs = chosen.pimNs;
    rep.cpuNs = chosen.cpuNs;
    rep.cpuBlockedNs = chosen.cpuBlockedNs;
    rep.shardBytes = std::move(chosen.shardBytes);
    rep.mergeNs = chosen.mergeNs;
    rep.buildMergeNs = chosen.buildMergeNs;

    rep.optimized = true;
    rep.pricedChosenNs = chosen.pimNs + chosen.cpuNs;
    rep.pricedHandBuiltNs = hand.pimNs + hand.cpuNs;
    rep.execShards = oq.shards;
    rep.execWorkers = oq.workers;
    rep.execMorselRows = oq.morselRows;
    rep.cpuDemotedScans =
        static_cast<std::uint32_t>(oq.cpuPlacements.size());
    rep.joinsReordered = oq.joinsReordered;
    rep.joinsDemoted = oq.joinsDemoted;
    rep.planSummary = summaryLine(oq);

    if (result)
        *result = exec_out ? exec.result : std::move(exec.result);
    if (exec_out)
        *exec_out = std::move(exec);
    return rep;
}

} // namespace pushtap::olap
