#include "dram/timing_params.hpp"

namespace pushtap::dram {

TimingParams
TimingParams::ddr5_3200()
{
    TimingParams p;
    p.name = "DDR5-3200";
    p.tBURST = 2.5;
    p.tRCD = 7.5;
    p.tCL = 7.5;
    p.tRP = 7.5;
    p.tRAS = 16.3;
    p.tRRD = 2.5;
    p.tRFC = 121.9;
    p.tWR = 15.0;
    p.tWTR = 11.2;
    p.tRTP = 3.75;
    p.tRTW = 4.4;
    p.tCS = 4.4;
    p.tREFI = 3900.0;
    return p;
}

TimingParams
TimingParams::hbm3()
{
    TimingParams p;
    p.name = "HBM3-2Gbps";
    p.tBURST = 2.0;
    p.tRCD = 3.5;
    p.tCL = 3.5;
    p.tRP = 3.5;
    p.tRAS = 8.5;
    p.tRRD = 2.0;
    p.tRFC = 175.0;
    p.tWR = 4.0;
    p.tWTR = 1.5;
    p.tRTP = 1.0;
    p.tRTW = 1.5;
    p.tCS = 1.5;
    p.tREFI = 2000.0;
    return p;
}

} // namespace pushtap::dram
