#pragma once

/**
 * @file
 * Physical address mapping for the interleaved PIM DRAM space.
 *
 * The CPU sees a flat byte-addressable space. Lines (64 B) interleave
 * round-robin across channels, then ranks; within a rank each line is
 * an ADE stripe: g bytes from every device at the same device-local
 * offset. Device-local bytes then spread row-buffer-sized chunks
 * round-robin across the device's banks for bank-level parallelism.
 *
 * PIM units address the same cells through bank-local coordinates
 * (the IDE dimension); decompose()/compose() are exact inverses so the
 * two views are provably consistent.
 */

#include <cstdint>

#include "common/types.hpp"
#include "dram/geometry.hpp"

namespace pushtap::dram {

/** Full coordinates of one byte in the PIM DRAM system. */
struct Coord
{
    std::uint32_t channel;
    std::uint32_t rank;
    std::uint32_t device;
    std::uint32_t bank;     ///< Bank index within the device.
    std::uint64_t row;
    std::uint64_t column;   ///< Byte offset within the device row.

    bool
    operator==(const Coord &o) const
    {
        return channel == o.channel && rank == o.rank &&
               device == o.device && bank == o.bank && row == o.row &&
               column == o.column;
    }
};

class AddressMap
{
  public:
    explicit AddressMap(const Geometry &geom) : geom_(geom) {}

    const Geometry &geometry() const { return geom_; }

    /** Decompose a flat physical address into DRAM coordinates. */
    Coord decompose(std::uint64_t addr) const;

    /** Recompose coordinates into the flat physical address. */
    std::uint64_t compose(const Coord &c) const;

    /**
     * Flat index of the bank holding @p c, unique across the system;
     * equals the id of the PIM unit owning that bank.
     */
    BankId
    flatBank(const Coord &c) const
    {
        const auto &g = geom_;
        return ((c.channel * g.ranksPerChannel + c.rank) *
                    g.devicesPerRank + c.device) * g.banksPerDevice +
               c.bank;
    }

    /**
     * Device-local byte address (the IDE offset a PIM unit's DMA uses),
     * covering all banks of the device.
     */
    std::uint64_t deviceLocal(const Coord &c) const;

    /** Total addressable bytes. */
    Bytes capacity() const { return geom_.totalBytes(); }

  private:
    Geometry geom_;
};

} // namespace pushtap::dram
