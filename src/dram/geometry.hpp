#pragma once

/**
 * @file
 * DRAM system geometry (Table 1) and the two-dimensional access
 * parameters derived from it: the ADE stripe (how many devices share a
 * CPU line, at what interleave granularity) and the IDE streaming unit
 * (one PIM unit per bank).
 */

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace pushtap::dram {

struct Geometry
{
    std::string name;

    std::uint32_t channels;       ///< Memory channels holding PIM DRAM.
    std::uint32_t ranksPerChannel;
    std::uint32_t devicesPerRank; ///< Chips striped by CPU interleaving.
    std::uint32_t banksPerDevice;
    std::uint64_t rowsPerBank;
    std::uint64_t columnsPerRow;  ///< Bytes per device row buffer.

    /**
     * Interleave granularity g: bytes each device contributes to one
     * CPU access (8 B on DIMM per the DDR protocol, 64 B on HBM).
     */
    Bytes interleaveGranularity;

    /** CPU cache-line size; one line == one ADE stripe on DIMM. */
    Bytes lineBytes;

    /**
     * True when a CPU line stripes across devicesPerRank devices (DIMM).
     * False when a line comes from a single bank granule (HBM) so each
     * part slot costs an independent granule fetch.
     */
    bool stripedLines;

    std::uint32_t
    banksPerRank() const
    {
        return devicesPerRank * banksPerDevice;
    }

    std::uint32_t
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank();
    }

    /** One PIM unit per bank (UPMEM-like). */
    std::uint32_t totalPimUnits() const { return totalBanks(); }

    Bytes
    bytesPerBank() const
    {
        return rowsPerBank * columnsPerRow;
    }

    Bytes
    bytesPerRank() const
    {
        return bytesPerBank() * banksPerRank();
    }

    Bytes
    totalBytes() const
    {
        return bytesPerRank() * ranksPerChannel * channels;
    }

    /** Devices per ADE stripe (1 when not striped). */
    std::uint32_t
    stripeDevices() const
    {
        return stripedLines ? devicesPerRank : 1;
    }

    /** DIMM-based default system (Table 1): 4 ch x 4 ranks PIM DRAM. */
    static Geometry dimmDefault();

    /** HBM-based comparison system (Table 1): 32 channels. */
    static Geometry hbmDefault();
};

} // namespace pushtap::dram
