#pragma once

/**
 * @file
 * DRAM timing parameters, exactly the fields of Table 1 of the paper.
 * Two presets are provided: the default DIMM-based system (DDR5-3200)
 * and the HBM-based comparison system (HBM3-2Gbps).
 */

#include <string>

#include "common/types.hpp"

namespace pushtap::dram {

/** All values in nanoseconds. */
struct TimingParams
{
    std::string name;

    double tBURST; ///< Data burst time for one full-line transfer.
    double tRCD;   ///< ACT -> column command.
    double tCL;    ///< Column command -> data.
    double tRP;    ///< PRE -> ACT.
    double tRAS;   ///< ACT -> PRE minimum.
    double tRRD;   ///< ACT -> ACT (different banks).
    double tRFC;   ///< Refresh cycle time.
    double tWR;    ///< Write recovery.
    double tWTR;   ///< Write -> read turnaround.
    double tRTP;   ///< Read -> PRE.
    double tRTW;   ///< Read -> write turnaround.
    double tCS;    ///< Rank-to-rank switch.
    double tREFI;  ///< Refresh interval.

    /** Random-access (row miss) latency: PRE + ACT + CAS + burst. */
    double
    rowMissLatency() const
    {
        return tRP + tRCD + tCL + tBURST;
    }

    /** Row-hit latency: CAS + burst. */
    double
    rowHitLatency() const
    {
        return tCL + tBURST;
    }

    /**
     * Fraction of time the DRAM is available (not refreshing).
     * tRFC out of every tREFI is lost to refresh.
     */
    double
    refreshAvailability() const
    {
        return 1.0 - tRFC / tREFI;
    }

    /** DDR5-3200 preset (Table 1, "DRAM DIMM"). */
    static TimingParams ddr5_3200();

    /** HBM3-2Gbps preset (Table 1, "HBM-based System"). */
    static TimingParams hbm3();
};

} // namespace pushtap::dram
