#include "dram/geometry.hpp"

namespace pushtap::dram {

Geometry
Geometry::dimmDefault()
{
    Geometry g;
    g.name = "DIMM-DDR5";
    g.channels = 4;
    g.ranksPerChannel = 4;
    g.devicesPerRank = 8;
    g.banksPerDevice = 8;
    g.rowsPerBank = 131072;
    g.columnsPerRow = 1024;
    g.interleaveGranularity = 8;
    g.lineBytes = 64;
    g.stripedLines = true;
    return g;
}

Geometry
Geometry::hbmDefault()
{
    Geometry g;
    g.name = "HBM3";
    g.channels = 32;
    g.ranksPerChannel = 1;   // pseudo-channel pairs folded into devices
    g.devicesPerRank = 2;    // 2 pseudo-channels
    g.banksPerDevice = 16;   // 4 bank groups x 4 banks
    g.rowsPerBank = 32768;
    g.columnsPerRow = 2048;  // 8 Gb/bank / 32768 rows / 16 (col width)
    g.interleaveGranularity = 64;
    g.lineBytes = 64;
    g.stripedLines = false;
    return g;
}

} // namespace pushtap::dram
