#include "dram/address.hpp"

#include <cstdint>

#include "common/log.hpp"

namespace pushtap::dram {

Coord
AddressMap::decompose(std::uint64_t addr) const
{
    const auto &g = geom_;
    if (addr >= capacity())
        panic("address {:#x} beyond capacity {:#x}", addr, capacity());

    const std::uint64_t line = addr / g.lineBytes;
    const std::uint64_t off = addr % g.lineBytes;

    Coord c;
    c.channel = static_cast<std::uint32_t>(line % g.channels);
    const std::uint64_t inChannel = line / g.channels;
    c.rank = static_cast<std::uint32_t>(inChannel % g.ranksPerChannel);
    const std::uint64_t lineInRank = inChannel / g.ranksPerChannel;

    std::uint64_t deviceLocal;
    if (g.stripedLines) {
        // ADE stripe: device selected by position inside the line.
        c.device = static_cast<std::uint32_t>(off / g.interleaveGranularity);
        deviceLocal = lineInRank * g.interleaveGranularity +
                      off % g.interleaveGranularity;
    } else {
        // Whole line from a single device granule (HBM-style).
        const std::uint64_t granule = lineInRank;
        c.device = static_cast<std::uint32_t>(granule % g.devicesPerRank);
        deviceLocal = (granule / g.devicesPerRank) * g.lineBytes + off;
    }

    const std::uint64_t chunk = deviceLocal / g.columnsPerRow;
    c.column = deviceLocal % g.columnsPerRow;
    c.bank = static_cast<std::uint32_t>(chunk % g.banksPerDevice);
    c.row = chunk / g.banksPerDevice;
    return c;
}

std::uint64_t
AddressMap::compose(const Coord &c) const
{
    const auto &g = geom_;
    const std::uint64_t chunk = c.row * g.banksPerDevice + c.bank;
    const std::uint64_t deviceLocal = chunk * g.columnsPerRow + c.column;

    std::uint64_t lineInRank;
    std::uint64_t off;
    if (g.stripedLines) {
        lineInRank = deviceLocal / g.interleaveGranularity;
        off = static_cast<std::uint64_t>(c.device) *
                  g.interleaveGranularity +
              deviceLocal % g.interleaveGranularity;
    } else {
        const std::uint64_t granuleInDevice = deviceLocal / g.lineBytes;
        lineInRank = granuleInDevice * g.devicesPerRank + c.device;
        off = deviceLocal % g.lineBytes;
    }

    const std::uint64_t inChannel =
        lineInRank * g.ranksPerChannel + c.rank;
    const std::uint64_t line = inChannel * g.channels + c.channel;
    return line * g.lineBytes + off;
}

std::uint64_t
AddressMap::deviceLocal(const Coord &c) const
{
    const auto &g = geom_;
    return (c.row * g.banksPerDevice + c.bank) * g.columnsPerRow +
           c.column;
}

} // namespace pushtap::dram
