#pragma once

/**
 * @file
 * Analytic batch timing model. Engines report access batches (how many
 * lines, streamed or random, read or write) and receive nanoseconds,
 * computed from the Table 1 timing parameters. This stands in for the
 * trace-driven ramulator-pim runs of the paper (see DESIGN.md §2); the
 * event-driven memctrl model validates the same formulas at small
 * scale.
 */

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"
#include "dram/geometry.hpp"
#include "dram/timing_params.hpp"

namespace pushtap::dram {

class BatchTimingModel
{
  public:
    BatchTimingModel(const Geometry &geom, const TimingParams &timing)
        : geom_(geom), timing_(timing)
    {}

    const Geometry &geometry() const { return geom_; }
    const TimingParams &timing() const { return timing_; }

    /** Peak CPU-visible bus bandwidth over all PIM channels. */
    Bandwidth
    cpuPeakBandwidth() const
    {
        const double per_channel =
            static_cast<double>(geom_.lineBytes) / timing_.tBURST;
        return Bandwidth::gbPerSec(per_channel * geom_.channels *
                                   timing_.refreshAvailability());
    }

    /** Latency of one isolated row-miss line access. */
    TimeNs
    randomAccessLatency() const
    {
        return timing_.rowMissLatency();
    }

    /** Latency of one row-hit line access. */
    TimeNs
    rowHitLatency() const
    {
        return timing_.rowHitLatency();
    }

    /**
     * Time for the CPU to stream @p n_lines sequential lines using all
     * channels (bus-bound; row misses amortise across banks).
     */
    TimeNs
    lineStreamTime(std::uint64_t n_lines) const
    {
        const double bus = static_cast<double>(n_lines) * timing_.tBURST /
                           static_cast<double>(geom_.channels);
        return bus / timing_.refreshAvailability();
    }

    /**
     * Time for the CPU to perform @p n_lines independent random line
     * accesses at full concurrency: bounded by either bus occupancy or
     * bank occupancy (each random access holds its bank for
     * tRAS + tRP).
     */
    TimeNs
    randomLineBatchTime(std::uint64_t n_lines) const
    {
        const double bus = static_cast<double>(n_lines) * timing_.tBURST /
                           static_cast<double>(geom_.channels);
        const double bank_occupancy = timing_.tRAS + timing_.tRP;
        const double banks = static_cast<double>(geom_.totalBanks()) /
                             static_cast<double>(geom_.stripeDevices());
        const double bank = static_cast<double>(n_lines) *
                            bank_occupancy / banks;
        return std::max(bus, bank) / timing_.refreshAvailability();
    }

    /**
     * Write variant of randomLineBatchTime: writes additionally hold
     * the bank for the write-recovery time tWR.
     */
    TimeNs
    randomWriteBatchTime(std::uint64_t n_lines) const
    {
        const double bus = static_cast<double>(n_lines) * timing_.tBURST /
                           static_cast<double>(geom_.channels);
        const double bank_occupancy =
            timing_.tRAS + timing_.tRP + timing_.tWR;
        const double banks = static_cast<double>(geom_.totalBanks()) /
                             static_cast<double>(geom_.stripeDevices());
        const double bank = static_cast<double>(n_lines) *
                            bank_occupancy / banks;
        return std::max(bus, bank) / timing_.refreshAvailability();
    }

    /**
     * Time for one PIM unit to stream @p bytes from its local bank at
     * the per-unit bandwidth @p unit_bw (1 GB/s on the commercial
     * DIMM-based part).
     */
    TimeNs
    pimStreamTime(Bytes bytes, Bandwidth unit_bw) const
    {
        return unit_bw.transferTime(bytes) /
               timing_.refreshAvailability();
    }

    /** Aggregate internal bandwidth of all PIM units. */
    Bandwidth
    pimAggregateBandwidth(Bandwidth unit_bw) const
    {
        return unit_bw * static_cast<double>(geom_.totalPimUnits());
    }

  private:
    Geometry geom_;
    TimingParams timing_;
};

} // namespace pushtap::dram
