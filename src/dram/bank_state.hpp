#pragma once

/**
 * @file
 * Per-bank DRAM state machine used by the event-driven memory
 * controller model: tracks the open row and the earliest tick at which
 * the next command may issue, honouring tRCD/tCL/tRP/tRAS/tWR/tRTP.
 */

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "dram/timing_params.hpp"

namespace pushtap::dram {

/** Who currently owns the bank's data bus (two-mode PIM design). */
enum class BankOwner
{
    Cpu, ///< Normal mode: CPU accesses, PIM locked out.
    Pim, ///< PIM mode: bank handed to the local PIM unit.
};

class BankState
{
  public:
    explicit BankState(const TimingParams &t) : timing_(&t) {}

    BankOwner owner() const { return owner_; }
    void setOwner(BankOwner o) { owner_ = o; }

    std::optional<std::uint64_t> openRow() const { return openRow_; }

    /** Earliest tick the bank can accept a new command. */
    Tick readyAt() const { return readyAt_; }

    /**
     * Issue a read of one line in @p row starting no earlier than
     * @p now. Returns the tick at which data transfer completes.
     * Updates the open row and bank-ready time.
     */
    Tick accessRead(Tick now, std::uint64_t row);

    /** Issue a write of one line; returns data completion tick. */
    Tick accessWrite(Tick now, std::uint64_t row);

    /** Precharge (close the open row); returns completion tick. */
    Tick precharge(Tick now);

    /** Refresh the bank; returns completion tick. */
    Tick refresh(Tick now);

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }

  private:
    Tick prepareRow(Tick start, std::uint64_t row);

    const TimingParams *timing_;
    BankOwner owner_ = BankOwner::Cpu;
    std::optional<std::uint64_t> openRow_;
    Tick readyAt_ = 0;
    Tick activatedAt_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace pushtap::dram
