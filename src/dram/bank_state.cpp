#include "dram/bank_state.hpp"

#include <algorithm>
#include <cstdint>

namespace pushtap::dram {

Tick
BankState::prepareRow(Tick start, std::uint64_t row)
{
    // Returns the tick at which a column command for `row` may issue.
    if (openRow_ && *openRow_ == row) {
        ++rowHits_;
        return start;
    }
    ++rowMisses_;
    Tick t = start;
    if (openRow_) {
        // Honour tRAS before precharging, then tRP.
        const Tick ras_done = activatedAt_ + nsToTicks(timing_->tRAS);
        t = std::max(t, ras_done) + nsToTicks(timing_->tRP);
    }
    // Activate: column command allowed tRCD later.
    activatedAt_ = t;
    openRow_ = row;
    return t + nsToTicks(timing_->tRCD);
}

Tick
BankState::accessRead(Tick now, std::uint64_t row)
{
    const Tick start = std::max(now, readyAt_);
    const Tick col = prepareRow(start, row);
    const Tick done =
        col + nsToTicks(timing_->tCL) + nsToTicks(timing_->tBURST);
    // Next command may overlap CAS latency but not the burst; keep the
    // model simple and conservative: bank busy until read-to-precharge
    // constraint clears.
    readyAt_ = std::max(done, col + nsToTicks(timing_->tRTP));
    return done;
}

Tick
BankState::accessWrite(Tick now, std::uint64_t row)
{
    const Tick start = std::max(now, readyAt_);
    const Tick col = prepareRow(start, row);
    const Tick done =
        col + nsToTicks(timing_->tCL) + nsToTicks(timing_->tBURST);
    // Write recovery keeps the bank busy beyond the burst.
    readyAt_ = done + nsToTicks(timing_->tWR);
    return done;
}

Tick
BankState::precharge(Tick now)
{
    Tick t = std::max(now, readyAt_);
    if (openRow_) {
        const Tick ras_done = activatedAt_ + nsToTicks(timing_->tRAS);
        t = std::max(t, ras_done) + nsToTicks(timing_->tRP);
        openRow_.reset();
    }
    readyAt_ = t;
    return t;
}

Tick
BankState::refresh(Tick now)
{
    Tick t = precharge(now);
    t += nsToTicks(timing_->tRFC);
    readyAt_ = t;
    return t;
}

} // namespace pushtap::dram
