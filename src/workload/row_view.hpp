#pragma once

/**
 * @file
 * Typed accessors over a canonical packed row buffer: the in-cache
 * representation transactions operate on directly (section 6.3).
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "common/log.hpp"
#include "format/schema.hpp"

namespace pushtap::workload {

/** Read-only view of one canonical row. */
class ConstRowView
{
  public:
    ConstRowView(const format::TableSchema &schema,
                 std::span<const std::uint8_t> bytes)
        : schema_(&schema), bytes_(bytes)
    {
        if (bytes.size() < schema.rowBytes())
            panic("row buffer {} < schema row bytes {}", bytes.size(),
                  schema.rowBytes());
    }

    const format::TableSchema &schema() const { return *schema_; }

    std::int64_t
    getInt(ColumnId id) const
    {
        const auto &col = schema_->column(id);
        return format::decodeValue(
            col, bytes_.subspan(schema_->canonicalOffset(id)));
    }

    std::int64_t
    getInt(std::string_view name) const
    {
        return getInt(schema_->columnId(std::string(name)));
    }

    std::string_view
    getChars(ColumnId id) const
    {
        const auto &col = schema_->column(id);
        return {reinterpret_cast<const char *>(
                    bytes_.data() + schema_->canonicalOffset(id)),
                col.width};
    }

    std::string_view
    getChars(std::string_view name) const
    {
        return getChars(schema_->columnId(std::string(name)));
    }

  private:
    const format::TableSchema *schema_;
    std::span<const std::uint8_t> bytes_;
};

/** Mutable view of one canonical row. */
class RowView
{
  public:
    RowView(const format::TableSchema &schema,
            std::span<std::uint8_t> bytes)
        : schema_(&schema), bytes_(bytes)
    {
        if (bytes.size() < schema.rowBytes())
            panic("row buffer {} < schema row bytes {}", bytes.size(),
                  schema.rowBytes());
    }

    const format::TableSchema &schema() const { return *schema_; }

    void
    setInt(ColumnId id, std::int64_t value)
    {
        const auto &col = schema_->column(id);
        const std::uint32_t off = schema_->canonicalOffset(id);
        auto v = static_cast<std::uint64_t>(value);
        for (std::uint32_t i = 0; i < col.width; ++i) {
            bytes_[off + i] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
        }
    }

    void
    setInt(std::string_view name, std::int64_t value)
    {
        setInt(schema_->columnId(std::string(name)), value);
    }

    void
    setChars(ColumnId id, std::string_view s)
    {
        const auto &col = schema_->column(id);
        const std::uint32_t off = schema_->canonicalOffset(id);
        const std::size_t n =
            std::min<std::size_t>(s.size(), col.width);
        std::memcpy(bytes_.data() + off, s.data(), n);
        if (n < col.width)
            std::memset(bytes_.data() + off + n, 0, col.width - n);
    }

    void
    setChars(std::string_view name, std::string_view s)
    {
        setChars(schema_->columnId(std::string(name)), s);
    }

    ConstRowView
    asConst() const
    {
        return ConstRowView(*schema_, bytes_);
    }

    std::int64_t
    getInt(std::string_view name) const
    {
        return asConst().getInt(name);
    }

  private:
    const format::TableSchema *schema_;
    std::span<std::uint8_t> bytes_;
};

} // namespace pushtap::workload
