#include "workload/query_catalog.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::workload {

namespace {

using T = ChTable;

std::vector<QueryFootprint>
buildCatalog()
{
    // Reconstructed from the standard CH-benCHmark rewrites of the 22
    // TPC-H queries over the TPC-C schema. Each entry lists the
    // columns the query scans (selection, join, aggregation and
    // group-by columns).
    return {
        // Q1: pricing summary on ORDERLINE.
        {1,
         {{T::OrderLine, "ol_number"},
          {T::OrderLine, "ol_quantity"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q2: minimum-cost supplier (stock/item side).
        {2,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::Item, "i_name"},
          {T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::Stock, "s_quantity"},
          {T::Stock, "s_ytd"},
          {T::Stock, "s_order_cnt"}}},
        // Q3: shipping priority (customer x orders x orderline).
        {3,
         {{T::Customer, "c_id"},
          {T::Customer, "c_d_id"},
          {T::Customer, "c_w_id"},
          {T::Customer, "c_state"},
          {T::Orders, "o_id"},
          {T::Orders, "o_d_id"},
          {T::Orders, "o_w_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::NewOrder, "no_o_id"},
          {T::NewOrder, "no_d_id"},
          {T::NewOrder, "no_w_id"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_d_id"},
          {T::OrderLine, "ol_w_id"},
          {T::OrderLine, "ol_amount"}}},
        // Q4: order priority checking.
        {4,
         {{T::Orders, "o_id"},
          {T::Orders, "o_d_id"},
          {T::Orders, "o_w_id"},
          {T::Orders, "o_entry_d"},
          {T::Orders, "o_ol_cnt"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_d_id"},
          {T::OrderLine, "ol_w_id"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q5: local supplier volume.
        {5,
         {{T::Customer, "c_id"},
          {T::Customer, "c_d_id"},
          {T::Customer, "c_w_id"},
          {T::Customer, "c_state"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"}}},
        // Q6: forecast revenue change (pure ORDERLINE selection).
        {6,
         {{T::OrderLine, "ol_delivery_d"},
          {T::OrderLine, "ol_quantity"},
          {T::OrderLine, "ol_amount"}}},
        // Q7: volume shipping.
        {7,
         {{T::Customer, "c_id"},
          {T::Customer, "c_state"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::OrderLine, "ol_amount"},
          {T::Stock, "s_w_id"},
          {T::Stock, "s_i_id"}}},
        // Q8: national market share.
        {8,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::Customer, "c_id"},
          {T::Customer, "c_state"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::OrderLine, "ol_amount"}}},
        // Q9: product type profit (item x stock x orderline x
        // orders, the orders leg on the full composite order key).
        {9,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::Orders, "o_id"},
          {T::Orders, "o_d_id"},
          {T::Orders, "o_w_id"},
          {T::Orders, "o_entry_d"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_d_id"},
          {T::OrderLine, "ol_w_id"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::OrderLine, "ol_amount"}}},
        // Q10: returned item reporting.
        {10,
         {{T::Customer, "c_id"},
          {T::Customer, "c_last"},
          {T::Customer, "c_city"},
          {T::Customer, "c_state"},
          {T::Customer, "c_phone"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::Orders, "o_carrier_id"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q11: important stock identification.
        {11,
         {{T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::Stock, "s_quantity"},
          {T::Stock, "s_order_cnt"}}},
        // Q12: shipping mode / order priority (joined on the full
        // composite order key, as the CH rewrite does).
        {12,
         {{T::Orders, "o_id"},
          {T::Orders, "o_d_id"},
          {T::Orders, "o_w_id"},
          {T::Orders, "o_entry_d"},
          {T::Orders, "o_carrier_id"},
          {T::Orders, "o_ol_cnt"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_d_id"},
          {T::OrderLine, "ol_w_id"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q13: customer distribution.
        {13,
         {{T::Customer, "c_id"},
          {T::Customer, "c_d_id"},
          {T::Customer, "c_w_id"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_carrier_id"}}},
        // Q14: promotion effect.
        {14,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q15: top supplier.
        {15,
         {{T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q16: parts/supplier relationship.
        {16,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::Item, "i_price"},
          {T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"}}},
        // Q17: small-quantity-order revenue.
        {17,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_quantity"},
          {T::OrderLine, "ol_amount"}}},
        // Q18: large volume customer.
        {18,
         {{T::Customer, "c_id"},
          {T::Customer, "c_last"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"},
          {T::Orders, "o_entry_d"},
          {T::Orders, "o_ol_cnt"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_amount"}}},
        // Q19: discounted revenue.
        {19,
         {{T::Item, "i_id"},
          {T::Item, "i_price"},
          {T::Item, "i_data"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_quantity"},
          {T::OrderLine, "ol_amount"},
          {T::OrderLine, "ol_w_id"}}},
        // Q20: potential part promotion.
        {20,
         {{T::Item, "i_id"},
          {T::Item, "i_data"},
          {T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::Stock, "s_quantity"},
          {T::OrderLine, "ol_i_id"},
          {T::OrderLine, "ol_delivery_d"},
          {T::OrderLine, "ol_quantity"}}},
        // Q21: suppliers who kept orders waiting.
        {21,
         {{T::Stock, "s_i_id"},
          {T::Stock, "s_w_id"},
          {T::Orders, "o_id"},
          {T::Orders, "o_entry_d"},
          {T::OrderLine, "ol_o_id"},
          {T::OrderLine, "ol_supply_w_id"},
          {T::OrderLine, "ol_delivery_d"}}},
        // Q22: global sales opportunity.
        {22,
         {{T::Customer, "c_id"},
          {T::Customer, "c_phone"},
          {T::Customer, "c_balance"},
          {T::Orders, "o_id"},
          {T::Orders, "o_c_id"}}},
    };
}

} // namespace

const std::vector<QueryFootprint> &
chQueryCatalog()
{
    static const std::vector<QueryFootprint> catalog = buildCatalog();
    return catalog;
}

const std::vector<ExecutableQuery> &
chExecutablePlans()
{
    static const std::vector<ExecutableQuery> plans = [] {
        namespace p = olap::plans;
        std::vector<ExecutableQuery> v;
        v.push_back({1, true, p::q1()});
        v.push_back({2, true, p::q2()});
        v.push_back({3, true, p::q3()});
        v.push_back({4, true, p::q4()});
        v.push_back({5, true, p::q5()});
        v.push_back({6, true, p::q6()});
        v.push_back({7, true, p::q7()});
        v.push_back({8, true, p::q8()});
        v.push_back({9, true, p::q9()});
        v.push_back({10, true, p::q10()});
        v.push_back({11, true, p::q11()});
        v.push_back({12, true, p::q12()});
        v.push_back({13, true, p::q13()});
        v.push_back({14, true, p::q14()});
        v.push_back({15, true, p::q15()});
        v.push_back({16, true, p::q16()});
        v.push_back({17, true, p::q17()});
        v.push_back({18, true, p::q18()});
        v.push_back({19, true, p::q19()});
        v.push_back({20, true, p::q20()});
        v.push_back({21, true, p::q21()});
        v.push_back({22, true, p::q22()});
        return v;
    }();
    return plans;
}

const olap::QueryPlan *
executableQueryPlan(int query_no)
{
    if (query_no < 1 || query_no > 22)
        fatal("executableQueryPlan: Q{} is outside the CH-benCHmark "
              "catalog (valid queries: Q1..Q22, all executable)",
              query_no);
    for (const auto &q : chExecutablePlans())
        if (q.queryNo == query_no)
            return &q.plan;
    return nullptr;
}

std::map<std::pair<ChTable, std::string>, std::uint32_t>
scanFrequencies(int n_queries)
{
    if (n_queries < 0 || n_queries > 22)
        fatal("scanFrequencies: subset Q1-Q{} is out of range "
              "(valid subsets: 0 for none through 22 for the full "
              "CH-benCHmark catalog)",
              n_queries);
    std::map<std::pair<ChTable, std::string>, std::uint32_t> freq;
    for (const auto &q : chQueryCatalog()) {
        if (q.queryNo > n_queries)
            break;
        for (const auto &col : q.columns)
            ++freq[col];
    }
    return freq;
}

std::size_t
markKeyColumns(std::vector<format::TableSchema> &schemas,
               int n_queries)
{
    const auto freq = scanFrequencies(n_queries);
    std::size_t marked = 0;
    for (auto &schema : schemas) {
        std::vector<std::string> keys;
        for (const auto &[key, n] : freq) {
            (void)n;
            if (chTableName(key.first) == schema.name() &&
                schema.hasColumn(key.second))
                keys.push_back(key.second);
        }
        schema.setKeyColumns(keys);
        marked += keys.size();
    }
    return marked;
}

std::map<std::pair<ChTable, std::string>, std::uint32_t>
htapBenchScanFrequencies()
{
    // The HTAPBench analytical mix concentrates on ORDERS +
    // ORDERLINE + CUSTOMER aggregates.
    std::map<std::pair<ChTable, std::string>, std::uint32_t> freq;
    auto add = [&freq](ChTable t, const std::string &c,
                       std::uint32_t n) {
        freq[{t, c}] = n;
    };
    add(T::OrderLine, "ol_amount", 8);
    add(T::OrderLine, "ol_delivery_d", 6);
    add(T::OrderLine, "ol_quantity", 4);
    add(T::OrderLine, "ol_i_id", 4);
    add(T::OrderLine, "ol_o_id", 5);
    add(T::Orders, "o_id", 6);
    add(T::Orders, "o_entry_d", 5);
    add(T::Orders, "o_c_id", 4);
    add(T::Orders, "o_totalprice", 4);
    add(T::Customer, "c_id", 4);
    add(T::Customer, "c_balance", 2);
    add(T::Customer, "c_nationkey", 2);
    add(T::Item, "i_id", 3);
    add(T::Item, "i_price", 2);
    add(T::Stock, "s_i_id", 2);
    add(T::Stock, "s_quantity", 2);
    return freq;
}

} // namespace pushtap::workload
