#include "workload/ch_gen.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/log.hpp"

namespace pushtap::workload {

namespace {

const char *const kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI",
                                  "PRES", "ESE",   "ANTI", "CALLY",
                                  "ATION", "EYE"};

std::string
lastName(std::uint64_t n)
{
    return std::string(kSyllables[(n / 100) % 10]) +
           kSyllables[(n / 10) % 10] + kSyllables[n % 10];
}

std::string
randomText(Rng &rng, std::size_t len)
{
    std::string s(len, ' ');
    for (auto &c : s)
        c = static_cast<char>('a' + rng.below(26));
    return s;
}

} // namespace

ChGenerator::ChGenerator(std::uint64_t seed, double scale)
    : seed_(seed), scale_(scale), counts_(chRowCounts(scale))
{
}

void
ChGenerator::fillRow(ChTable t, const format::TableSchema &schema,
                     RowId r, std::span<std::uint8_t> row) const
{
    std::fill(row.begin(), row.begin() + schema.rowBytes(), 0);
    RowView v(schema, row);
    Rng rng = rowRng(t, r);

    const std::uint64_t n_warehouses = counts_.at(ChTable::Warehouse);
    const std::uint64_t n_districts = counts_.at(ChTable::District);
    const std::uint64_t n_customers = counts_.at(ChTable::Customer);
    const std::uint64_t n_items = counts_.at(ChTable::Item);
    const std::uint64_t n_orders = counts_.at(ChTable::Orders);

    switch (t) {
      case ChTable::Warehouse:
        v.setInt("w_id", static_cast<std::int64_t>(r));
        // std::string(..) + avoids the GCC 12 -Wrestrict false positive
        // on operator+(const char*, string&&) (GCC PR 105651).
        v.setChars("w_name", std::string("W") + std::to_string(r));
        v.setChars("w_street_1", randomText(rng, 12));
        v.setChars("w_street_2", randomText(rng, 12));
        v.setChars("w_city", randomText(rng, 10));
        v.setChars("w_state",
                   std::string(1, static_cast<char>(
                                      'A' + rng.below(26))) +
                       static_cast<char>('A' + rng.below(26)));
        v.setChars("w_zip", "123456789");
        v.setInt("w_tax", rng.inRange(0, 2000)); // basis points
        v.setInt("w_ytd", 30'000'000);
        break;
      case ChTable::District:
        v.setInt("d_id", static_cast<std::int64_t>(r % 10));
        v.setInt("d_w_id", static_cast<std::int64_t>(r / 10));
        v.setChars("d_name", std::string("D") + std::to_string(r));
        v.setChars("d_street_1", randomText(rng, 12));
        v.setChars("d_street_2", randomText(rng, 12));
        v.setChars("d_city", randomText(rng, 10));
        v.setChars("d_state", "AA");
        v.setChars("d_zip", "987654321");
        v.setInt("d_tax", rng.inRange(0, 2000));
        v.setInt("d_ytd", 3'000'000);
        // Runtime order ids start above every seed o_id so the
        // composite (o_id, d_id, w_id) order key stays unique across
        // inserts (CH join multiplicity and the PK index depend on
        // it).
        v.setInt("d_next_o_id", static_cast<std::int64_t>(n_orders));
        break;
      case ChTable::Customer:
        v.setInt("c_id", static_cast<std::int64_t>(r));
        v.setInt("c_d_id",
                 static_cast<std::int64_t>(r % n_districts % 10));
        v.setInt("c_w_id", static_cast<std::int64_t>(
                               r % n_districts / 10));
        v.setChars("c_first", randomText(rng, 10));
        v.setChars("c_middle", "OE");
        v.setChars("c_last", lastName(rng.below(1000)));
        v.setChars("c_street_1", randomText(rng, 12));
        v.setChars("c_street_2", randomText(rng, 12));
        v.setChars("c_city", randomText(rng, 10));
        v.setChars("c_state",
                   std::string(1, static_cast<char>(
                                      'A' + rng.below(26))) +
                       static_cast<char>('A' + rng.below(26)));
        v.setChars("c_zip", "111111111");
        v.setChars("c_phone", randomText(rng, 16));
        v.setInt("c_since", kDateBase - rng.inRange(0, 100000));
        v.setChars("c_credit", rng.flip(0.1) ? "BC" : "GC");
        v.setInt("c_credit_lim", 5'000'000);
        v.setInt("c_discount", rng.inRange(0, 5000));
        v.setInt("c_balance", -1000);
        v.setInt("c_ytd_payment", 1000);
        v.setInt("c_payment_cnt", 1);
        v.setInt("c_delivery_cnt", 0);
        v.setChars("c_data", randomText(rng, 100));
        break;
      case ChTable::History:
        v.setInt("h_c_id", rng.inRange(0, static_cast<std::int64_t>(
                                              n_customers - 1)));
        v.setInt("h_c_d_id", rng.inRange(0, 9));
        v.setInt("h_c_w_id",
                 rng.inRange(0, static_cast<std::int64_t>(
                                    n_warehouses - 1)));
        v.setInt("h_d_id", rng.inRange(0, 9));
        v.setInt("h_w_id", rng.inRange(0, static_cast<std::int64_t>(
                                              n_warehouses - 1)));
        v.setInt("h_date", kDateBase + static_cast<std::int64_t>(r));
        v.setInt("h_amount", 1000);
        v.setChars("h_data", randomText(rng, 12));
        break;
      case ChTable::NewOrder:
        v.setInt("no_o_id", static_cast<std::int64_t>(r % n_orders));
        v.setInt("no_d_id", static_cast<std::int64_t>(r % 10));
        v.setInt("no_w_id", rng.inRange(0, static_cast<std::int64_t>(
                                               n_warehouses - 1)));
        break;
      case ChTable::Orders:
        v.setInt("o_id", static_cast<std::int64_t>(r));
        v.setInt("o_d_id", static_cast<std::int64_t>(r % 10));
        v.setInt("o_w_id", static_cast<std::int64_t>(
                               r % n_districts / 10));
        v.setInt("o_c_id", rng.inRange(0, static_cast<std::int64_t>(
                                              n_customers - 1)));
        v.setInt("o_entry_d",
                 kDateBase + static_cast<std::int64_t>(r));
        v.setInt("o_carrier_id", rng.inRange(0, 9));
        v.setInt("o_ol_cnt",
                 static_cast<std::int64_t>(kLinesPerOrder));
        v.setInt("o_all_local", 1);
        break;
      case ChTable::OrderLine: {
        const std::uint64_t order = r / kLinesPerOrder;
        v.setInt("ol_o_id", static_cast<std::int64_t>(order));
        v.setInt("ol_d_id", static_cast<std::int64_t>(order % 10));
        v.setInt("ol_w_id", static_cast<std::int64_t>(
                                order % n_districts / 10));
        v.setInt("ol_number", static_cast<std::int64_t>(
                                  r % kLinesPerOrder + 1));
        v.setInt("ol_i_id", rng.inRange(0, static_cast<std::int64_t>(
                                               n_items - 1)));
        v.setInt("ol_supply_w_id",
                 rng.inRange(0, static_cast<std::int64_t>(
                                    n_warehouses - 1)));
        // Delivery dates track order entry so date-range predicates
        // select contiguous fractions of the table.
        v.setInt("ol_delivery_d",
                 kDateBase + static_cast<std::int64_t>(order) +
                     rng.inRange(1, 100));
        v.setInt("ol_quantity", rng.inRange(1, 10));
        v.setInt("ol_amount", rng.inRange(1, 999999));
        v.setChars("ol_dist_info", randomText(rng, 24));
        break;
      }
      case ChTable::Item:
        v.setInt("i_id", static_cast<std::int64_t>(r));
        v.setInt("i_im_id", rng.inRange(1, 10000));
        v.setChars("i_name", randomText(rng, 14));
        v.setInt("i_price", rng.inRange(100, 10000));
        // ~10% of items carry the "ORIGINAL" marker TPC-C uses and
        // CH queries filter on.
        v.setChars("i_data", rng.flip(0.1)
                                 ? "ORIGINAL" + randomText(rng, 20)
                                 : randomText(rng, 26));
        break;
      case ChTable::Stock:
        v.setInt("s_i_id", static_cast<std::int64_t>(r % n_items));
        v.setInt("s_w_id", static_cast<std::int64_t>(r / n_items));
        v.setInt("s_quantity", rng.inRange(10, 100));
        for (int d = 1; d <= 10; ++d) {
            char name[16];
            std::snprintf(name, sizeof(name), "s_dist_%02d", d);
            v.setChars(name, randomText(rng, 24));
        }
        v.setInt("s_ytd", 0);
        v.setInt("s_order_cnt", 0);
        v.setInt("s_remote_cnt", 0);
        v.setChars("s_data", rng.flip(0.1)
                                 ? "ORIGINAL" + randomText(rng, 20)
                                 : randomText(rng, 26));
        break;
    }
}

} // namespace pushtap::workload
