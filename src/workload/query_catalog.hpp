#pragma once

/**
 * @file
 * Column footprints of the 22 CH-benCHmark analytical queries.
 *
 * The paper derives key columns from "the columns scanned by frequent
 * analytical queries" (section 4.1.2) and evaluates key-column growth
 * over the subsets Q1, Q1-2, Q1-3, Q1-10, Q1-22 and ALL (Fig. 8(c,d);
 * the Q1 subset has 4 key columns, Q1-3 has 32). The footprints here
 * are reconstructed from the TPC-H query semantics on the TPC-C
 * schema (the standard CH-benCHmark rewrites) — they are data, and
 * deliberately easy to edit.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "format/schema.hpp"
#include "olap/plan.hpp"
#include "workload/ch_schema.hpp"

namespace pushtap::workload {

/** One analytical query's scanned columns. */
struct QueryFootprint
{
    int queryNo; ///< 1-based TPC-H query number.
    /** (table, column) pairs the query scans. */
    std::vector<std::pair<ChTable, std::string>> columns;
};

/** All 22 CH query footprints, ordered by query number. */
const std::vector<QueryFootprint> &chQueryCatalog();

/**
 * One CH query with an executable plan definition (olap/plan.hpp)
 * living next to its footprint.
 */
struct ExecutableQuery
{
    int queryNo; ///< 1-based TPC-H query number.
    /**
     * True when the plan's touched (table, column) set equals the
     * query's footprint entry exactly — currently every executable
     * plan. False would mark a documented simplification whose
     * touched set must then be a strict subset of the footprint.
     */
    bool coversFootprint;
    olap::QueryPlan plan; ///< Default-parameter plan.
};

/**
 * All 22 CH queries with executable plans, ordered by query number
 * (every catalog footprint has a runnable plan since the expression
 * IR landed).
 */
const std::vector<ExecutableQuery> &chExecutablePlans();

/**
 * The default-parameter plan of query @p query_no. Fatal when
 * @p query_no is outside [1, 22] (the message names the valid
 * range); nullptr would mark a footprint-only query, of which none
 * remain.
 */
const olap::QueryPlan *executableQueryPlan(int query_no);

/**
 * Per-(table, column) scan frequency over queries [1, n_queries]
 * (how many queries of the subset scan the column). Columns never
 * scanned are absent.
 */
std::map<std::pair<ChTable, std::string>, std::uint32_t>
scanFrequencies(int n_queries);

/**
 * Mark key columns on @p schemas for the subset [Q1, Qn]: a column is
 * key iff some query of the subset scans it. Returns the total number
 * of key columns marked.
 */
std::size_t markKeyColumns(std::vector<format::TableSchema> &schemas,
                           int n_queries);

/**
 * HTAPBench analytical footprints (for the section 7.2 generality
 * test): scan frequencies over the HTAPBench query mix.
 */
std::map<std::pair<ChTable, std::string>, std::uint32_t>
htapBenchScanFrequencies();

} // namespace pushtap::workload
