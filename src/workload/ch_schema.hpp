#pragma once

/**
 * @file
 * CH-benCHmark schema (section 7.1): the nine TPC-C tables, with the
 * TPC-H-derived analytical queries running over them. Column widths
 * follow the TPC-C spec with decimals as integer cents, dates as
 * 8-byte epochs, and the long pseudo-text columns capped at the 152 B
 * maximum width the paper quotes in section 8.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "format/schema.hpp"

namespace pushtap::workload {

/** Table names, canonical order. */
enum class ChTable : std::uint8_t
{
    Warehouse,
    District,
    Customer,
    History,
    NewOrder,
    Orders,
    OrderLine,
    Item,
    Stock,
};

inline constexpr std::size_t kChTableCount = 9;

const char *chTableName(ChTable t);

/** Build the schema of one CH table (no key columns marked yet). */
format::TableSchema chTableSchema(ChTable t);

/** All nine schemas in canonical order. */
std::vector<format::TableSchema> chBenchmarkSchemas();

/**
 * Paper row counts (section 7.1: ITEM/STOCK 20M, CUSTOMER/ORDER/
 * HISTORY 6M, ORDERLINE/NEWORDER 60M) scaled by @p scale, with the
 * warehouse/district counts derived from the customer population.
 */
std::map<ChTable, std::uint64_t> chRowCounts(double scale);

/**
 * TPC-C primary-key columns of @p t (empty for HISTORY, which has
 * none). Under an MVCC snapshot each logical row exposes exactly one
 * visible version, so a join whose equality keys cover the build
 * table's primary key matches at most one build row per probe row —
 * the uniqueness fact the query optimizer's inner-to-semi join
 * demotion rests on.
 */
std::vector<std::string> chPrimaryKey(ChTable t);

/**
 * HTAPBench schema variant (section 7.2 generality test): TPC-C
 * tables extended per HTAPBench with a wider CUSTOMER and a TPCH-
 * style date dimension folded into ORDERS.
 */
std::vector<format::TableSchema> htapBenchSchemas();

} // namespace pushtap::workload
