#pragma once

/**
 * @file
 * Deterministic CH-benCHmark data generator. Values follow the TPC-C
 * population rules closely enough that the analytical queries have
 * meaningful selectivities (delivery dates spread over a date range,
 * quantities in [1, 10], item data with "ORIGINAL" markers, ...), and
 * every value is a pure function of (seed, table, row), so benches
 * and tests are reproducible and rows can be regenerated for
 * verification without storing a reference copy.
 */

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/ch_schema.hpp"
#include "workload/row_view.hpp"

namespace pushtap::workload {

/** Epoch base for generated dates (arbitrary, fixed). */
inline constexpr std::int64_t kDateBase = 1'000'000;

/** Orders per district scale unit; 10 orderlines per order. */
inline constexpr std::uint64_t kLinesPerOrder = 10;

class ChGenerator
{
  public:
    explicit ChGenerator(std::uint64_t seed, double scale = 0.001);

    double scale() const { return scale_; }

    const std::map<ChTable, std::uint64_t> &
    rowCounts() const
    {
        return counts_;
    }

    std::uint64_t
    rows(ChTable t) const
    {
        return counts_.at(t);
    }

    /**
     * Fill the canonical bytes of row @p r of table @p t. @p schema
     * must be (an extension of) chTableSchema(t); extension columns
     * are zero-filled.
     */
    void fillRow(ChTable t, const format::TableSchema &schema, RowId r,
                 std::span<std::uint8_t> row) const;

  private:
    /** Per-row deterministic stream. */
    Rng
    rowRng(ChTable t, RowId r) const
    {
        SplitMix64 sm(seed_ ^
                      (static_cast<std::uint64_t>(t) << 56) ^ r);
        return Rng(sm.next());
    }

    std::uint64_t seed_;
    double scale_;
    std::map<ChTable, std::uint64_t> counts_;
};

} // namespace pushtap::workload
