#include "workload/ch_schema.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/log.hpp"

namespace pushtap::workload {

using format::ColType;
using format::Column;
using format::TableSchema;

const char *
chTableName(ChTable t)
{
    switch (t) {
      case ChTable::Warehouse: return "warehouse";
      case ChTable::District: return "district";
      case ChTable::Customer: return "customer";
      case ChTable::History: return "history";
      case ChTable::NewOrder: return "neworder";
      case ChTable::Orders: return "orders";
      case ChTable::OrderLine: return "orderline";
      case ChTable::Item: return "item";
      case ChTable::Stock: return "stock";
    }
    return "unknown";
}

TableSchema
chTableSchema(ChTable t)
{
    switch (t) {
      case ChTable::Warehouse:
        return TableSchema(
            "warehouse",
            {
                {"w_id", 2, ColType::Int, false},
                {"w_name", 10, ColType::Char, false},
                {"w_street_1", 20, ColType::Char, false},
                {"w_street_2", 20, ColType::Char, false},
                {"w_city", 20, ColType::Char, false},
                {"w_state", 2, ColType::Char, false},
                {"w_zip", 9, ColType::Char, false},
                {"w_tax", 4, ColType::Int, false},
                {"w_ytd", 8, ColType::Int, false},
            });
      case ChTable::District:
        return TableSchema(
            "district",
            {
                {"d_id", 1, ColType::Int, false},
                {"d_w_id", 2, ColType::Int, false},
                {"d_name", 10, ColType::Char, false},
                {"d_street_1", 20, ColType::Char, false},
                {"d_street_2", 20, ColType::Char, false},
                {"d_city", 20, ColType::Char, false},
                {"d_state", 2, ColType::Char, false},
                {"d_zip", 9, ColType::Char, false},
                {"d_tax", 4, ColType::Int, false},
                {"d_ytd", 8, ColType::Int, false},
                {"d_next_o_id", 4, ColType::Int, false},
            });
      case ChTable::Customer:
        return TableSchema(
            "customer",
            {
                {"c_id", 4, ColType::Int, false},
                {"c_d_id", 1, ColType::Int, false},
                {"c_w_id", 2, ColType::Int, false},
                {"c_first", 16, ColType::Char, false},
                {"c_middle", 2, ColType::Char, false},
                {"c_last", 16, ColType::Char, false},
                {"c_street_1", 20, ColType::Char, false},
                {"c_street_2", 20, ColType::Char, false},
                {"c_city", 20, ColType::Char, false},
                {"c_state", 2, ColType::Char, false},
                {"c_zip", 9, ColType::Char, false},
                {"c_phone", 16, ColType::Char, false},
                {"c_since", 8, ColType::Int, false},
                {"c_credit", 2, ColType::Char, false},
                {"c_credit_lim", 8, ColType::Int, false},
                {"c_discount", 4, ColType::Int, false},
                {"c_balance", 8, ColType::Int, false},
                {"c_ytd_payment", 8, ColType::Int, false},
                {"c_payment_cnt", 2, ColType::Int, false},
                {"c_delivery_cnt", 2, ColType::Int, false},
                {"c_data", 152, ColType::Char, false},
            });
      case ChTable::History:
        return TableSchema(
            "history",
            {
                {"h_c_id", 4, ColType::Int, false},
                {"h_c_d_id", 1, ColType::Int, false},
                {"h_c_w_id", 2, ColType::Int, false},
                {"h_d_id", 1, ColType::Int, false},
                {"h_w_id", 2, ColType::Int, false},
                {"h_date", 8, ColType::Int, false},
                {"h_amount", 4, ColType::Int, false},
                {"h_data", 24, ColType::Char, false},
            });
      case ChTable::NewOrder:
        return TableSchema(
            "neworder",
            {
                {"no_o_id", 4, ColType::Int, false},
                {"no_d_id", 1, ColType::Int, false},
                {"no_w_id", 2, ColType::Int, false},
            });
      case ChTable::Orders:
        return TableSchema(
            "orders",
            {
                {"o_id", 4, ColType::Int, false},
                {"o_d_id", 1, ColType::Int, false},
                {"o_w_id", 2, ColType::Int, false},
                {"o_c_id", 4, ColType::Int, false},
                {"o_entry_d", 8, ColType::Int, false},
                {"o_carrier_id", 1, ColType::Int, false},
                {"o_ol_cnt", 1, ColType::Int, false},
                {"o_all_local", 1, ColType::Int, false},
            });
      case ChTable::OrderLine:
        return TableSchema(
            "orderline",
            {
                {"ol_o_id", 4, ColType::Int, false},
                {"ol_d_id", 1, ColType::Int, false},
                {"ol_w_id", 2, ColType::Int, false},
                {"ol_number", 1, ColType::Int, false},
                {"ol_i_id", 4, ColType::Int, false},
                {"ol_supply_w_id", 2, ColType::Int, false},
                {"ol_delivery_d", 8, ColType::Int, false},
                {"ol_quantity", 2, ColType::Int, false},
                {"ol_amount", 8, ColType::Int, false},
                {"ol_dist_info", 24, ColType::Char, false},
            });
      case ChTable::Item:
        return TableSchema(
            "item",
            {
                {"i_id", 4, ColType::Int, false},
                {"i_im_id", 4, ColType::Int, false},
                {"i_name", 24, ColType::Char, false},
                {"i_price", 4, ColType::Int, false},
                {"i_data", 50, ColType::Char, false},
            });
      case ChTable::Stock:
        return TableSchema(
            "stock",
            {
                {"s_i_id", 4, ColType::Int, false},
                {"s_w_id", 2, ColType::Int, false},
                {"s_quantity", 2, ColType::Int, false},
                {"s_dist_01", 24, ColType::Char, false},
                {"s_dist_02", 24, ColType::Char, false},
                {"s_dist_03", 24, ColType::Char, false},
                {"s_dist_04", 24, ColType::Char, false},
                {"s_dist_05", 24, ColType::Char, false},
                {"s_dist_06", 24, ColType::Char, false},
                {"s_dist_07", 24, ColType::Char, false},
                {"s_dist_08", 24, ColType::Char, false},
                {"s_dist_09", 24, ColType::Char, false},
                {"s_dist_10", 24, ColType::Char, false},
                {"s_ytd", 4, ColType::Int, false},
                {"s_order_cnt", 2, ColType::Int, false},
                {"s_remote_cnt", 2, ColType::Int, false},
                {"s_data", 50, ColType::Char, false},
            });
    }
    fatal("unknown CH table");
}

std::vector<TableSchema>
chBenchmarkSchemas()
{
    std::vector<TableSchema> out;
    for (std::size_t i = 0; i < kChTableCount; ++i)
        out.push_back(chTableSchema(static_cast<ChTable>(i)));
    return out;
}

std::map<ChTable, std::uint64_t>
chRowCounts(double scale)
{
    if (scale <= 0.0)
        fatal("chRowCounts: scale {} must be positive", scale);
    auto n = [scale](double rows) {
        const auto v = static_cast<std::uint64_t>(rows * scale);
        return v > 0 ? v : 1;
    };
    std::map<ChTable, std::uint64_t> counts;
    // Section 7.1 row counts; warehouses/districts derived from the
    // 3000-customers-per-district TPC-C ratio (10 districts per
    // warehouse always, so composite keys stay dense at any scale).
    counts[ChTable::Customer] = n(6e6);
    counts[ChTable::Warehouse] = n(200);
    counts[ChTable::District] = counts[ChTable::Warehouse] * 10;
    counts[ChTable::History] = n(6e6);
    counts[ChTable::NewOrder] = n(60e6);
    counts[ChTable::Orders] = n(6e6);
    counts[ChTable::OrderLine] = n(60e6);
    counts[ChTable::Item] = n(20e6);
    counts[ChTable::Stock] = n(20e6);
    return counts;
}

std::vector<std::string>
chPrimaryKey(ChTable t)
{
    switch (t) {
      case ChTable::Warehouse: return {"w_id"};
      case ChTable::District: return {"d_w_id", "d_id"};
      case ChTable::Customer: return {"c_w_id", "c_d_id", "c_id"};
      case ChTable::History: return {}; // TPC-C: no primary key.
      case ChTable::NewOrder:
        return {"no_w_id", "no_d_id", "no_o_id"};
      case ChTable::Orders: return {"o_w_id", "o_d_id", "o_id"};
      case ChTable::OrderLine:
        return {"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"};
      case ChTable::Item: return {"i_id"};
      case ChTable::Stock: return {"s_w_id", "s_i_id"};
    }
    fatal("unknown CH table");
}

std::vector<TableSchema>
htapBenchSchemas()
{
    // HTAPBench keeps the TPC-C core and widens the analytics-facing
    // columns; we extend ORDERS with TPC-H-style o_totalprice /
    // o_orderpriority and CUSTOMER with segment info.
    auto schemas = chBenchmarkSchemas();
    for (auto &s : schemas) {
        if (s.name() == "orders") {
            std::vector<Column> cols = s.columns();
            cols.push_back({"o_totalprice", 8, ColType::Int, false});
            cols.push_back(
                {"o_orderpriority", 15, ColType::Char, false});
            s = TableSchema("orders", cols);
        } else if (s.name() == "customer") {
            std::vector<Column> cols = s.columns();
            cols.push_back({"c_mktsegment", 10, ColType::Char, false});
            cols.push_back({"c_nationkey", 4, ColType::Int, false});
            s = TableSchema("customer", cols);
        }
    }
    return schemas;
}

} // namespace pushtap::workload
