#pragma once

/**
 * @file
 * Throughput-frontier model (Fig. 10): the set of simultaneously
 * achievable (OLTP tpmC, OLAP QphH) operating points for PUSHtap and
 * the multi-instance baseline.
 *
 * Steady state: analytical queries run back to back; transactions
 * arrive at rate R. The two sides couple through (a) memory-bus
 * contention — transaction line traffic and the query's CPU-side
 * transfers plus consistency traffic share the bus — and (b)
 * execution blocking: PUSHtap's LS phases lock banks briefly, while
 * MI's rebuild occupies both the bus and the row-store instance.
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"

namespace pushtap::htap {

/** One achievable operating point. */
struct FrontierPoint
{
    double oltpTpmC = 0.0;  ///< Transactions per minute.
    double olapQphH = 0.0;  ///< Queries per hour.
};

/** Per-system workload profile feeding the model. */
struct FrontierProfile
{
    std::uint32_t cores = 16;

    // Per-transaction costs (from a calibration run of the engine).
    TimeNs txnCpuNs = 3000.0;    ///< CPU-side work per transaction.
    double txnBusBytes = 700.0;  ///< Line traffic per transaction.
    double versionsPerTxn = 13.5;

    // Per-query costs.
    TimeNs queryPimNs = 1.0e6;       ///< PIM scan time.
    double queryCpuBusBytes = 1.0e6; ///< CPU transfer bytes.
    TimeNs queryCpuBlockedNs = 0.0;  ///< Bank-locked time per query.

    // Consistency traffic per pending version.
    double consistencyBusBytesPerVersion = 24.0; ///< Over the bus.
    TimeNs consistencyPimNsPerVersion = 0.0;     ///< PIM-side share.

    /** MI only: consistency work locks the OLTP instance. */
    bool consistencyBlocksOltp = false;

    Bandwidth busBandwidth = Bandwidth::gbPerSec(99.0);
};

class FrontierModel
{
  public:
    explicit FrontierModel(const FrontierProfile &profile)
        : p_(profile)
    {}

    const FrontierProfile &profile() const { return p_; }

    /** Core-bound OLTP ceiling (txn/s) with no OLAP running. */
    double maxTxnRate() const;

    /**
     * Steady-state query duration at transaction rate @p txn_rate
     * (txn/s), solving the consistency fixed point. Returns +inf when
     * the bus cannot sustain the rate.
     */
    TimeNs queryDuration(double txn_rate) const;

    /** The achievable point at @p txn_rate (queries back to back). */
    FrontierPoint evaluate(double txn_rate) const;

    /** Sweep the frontier with @p points samples. */
    std::vector<FrontierPoint> sweep(int points = 32) const;

  private:
    FrontierProfile p_;
};

} // namespace pushtap::htap
