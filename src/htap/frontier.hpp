#pragma once

/**
 * @file
 * Throughput-frontier model (Fig. 10): the set of simultaneously
 * achievable (OLTP tpmC, OLAP QphH) operating points for PUSHtap and
 * the multi-instance baseline.
 *
 * Steady state: analytical queries run back to back; transactions
 * arrive at rate R. The two sides couple through (a) memory-bus
 * contention — transaction line traffic and the query's CPU-side
 * transfers plus consistency traffic share the bus — and (b)
 * execution blocking: PUSHtap's LS phases lock banks briefly, while
 * MI's rebuild occupies both the bus and the row-store instance.
 *
 * This file also hosts the *commit-frontier vector* machinery: the
 * per-table epoch triples the result cache (olap/result_cache.hpp)
 * keys on. A query's footprint — every table its plan reads — maps to
 * a sorted vector of (table, epochs); equal vectors at two points in
 * time guarantee byte-identical answers because nothing the query can
 * observe changed in between.
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "workload/ch_schema.hpp"

namespace pushtap::txn {
class Database;
} // namespace pushtap::txn

namespace pushtap::htap {

/**
 * One table's position in the commit frontier. The three epochs are
 * monotone counters owned by `txn::TableRuntime`:
 *
 *  - `writeEpoch` advances once per committed version touching the
 *    table (updates and inserts alike);
 *  - `snapshotEpoch` advances when a snapshot pass flips at least one
 *    of the table's visibility bits (new commits becoming visible);
 *  - `rewriteEpoch` advances when defragmentation physically moves
 *    rows (delta slots recycled, data-region bytes rewritten).
 *
 * Query answers are a pure function of (visibility bitmaps, stored
 * bytes); both only change under one of these three events, so equal
 * triples imply an unchanged table as far as any reader can tell.
 */
struct TableFrontier
{
    workload::ChTable table = workload::ChTable::Warehouse;
    std::uint64_t writeEpoch = 0;
    std::uint64_t snapshotEpoch = 0;
    std::uint64_t rewriteEpoch = 0;

    friend bool
    operator==(const TableFrontier &a, const TableFrontier &b)
    {
        return a.table == b.table && a.writeEpoch == b.writeEpoch &&
               a.snapshotEpoch == b.snapshotEpoch &&
               a.rewriteEpoch == b.rewriteEpoch;
    }
};

/**
 * The frontier vector of a query footprint: one `TableFrontier` per
 * footprint table, sorted by table id (deduplicated). Two captures
 * compare equal iff no footprint table saw a commit, a snapshot bit
 * flip, or a defragmentation pass in between.
 */
struct FrontierVector
{
    std::vector<TableFrontier> tables;

    friend bool
    operator==(const FrontierVector &a, const FrontierVector &b)
    {
        return a.tables == b.tables;
    }

    /** Entry for @p t, or nullptr when t is not in the footprint. */
    const TableFrontier *find(workload::ChTable t) const;
};

/**
 * Capture the current frontier of @p tables (any order, duplicates
 * fine) from @p db. Individual epoch loads are atomic; the vector as
 * a whole is not a consistent cut under concurrent ingest — callers
 * use it as a cache key, where a torn capture can only cause a
 * conservative miss, never a stale hit.
 */
FrontierVector captureFrontier(const txn::Database &db,
                               std::vector<workload::ChTable> tables);

/** One achievable operating point. */
struct FrontierPoint
{
    double oltpTpmC = 0.0;  ///< Transactions per minute.
    double olapQphH = 0.0;  ///< Queries per hour.
};

/** Per-system workload profile feeding the model. */
struct FrontierProfile
{
    std::uint32_t cores = 16;

    // Per-transaction costs (from a calibration run of the engine).
    TimeNs txnCpuNs = 3000.0;    ///< CPU-side work per transaction.
    double txnBusBytes = 700.0;  ///< Line traffic per transaction.
    double versionsPerTxn = 13.5;

    // Per-query costs.
    TimeNs queryPimNs = 1.0e6;       ///< PIM scan time.
    double queryCpuBusBytes = 1.0e6; ///< CPU transfer bytes.
    TimeNs queryCpuBlockedNs = 0.0;  ///< Bank-locked time per query.

    // Consistency traffic per pending version.
    double consistencyBusBytesPerVersion = 24.0; ///< Over the bus.
    TimeNs consistencyPimNsPerVersion = 0.0;     ///< PIM-side share.

    /** MI only: consistency work locks the OLTP instance. */
    bool consistencyBlocksOltp = false;

    Bandwidth busBandwidth = Bandwidth::gbPerSec(99.0);
};

class FrontierModel
{
  public:
    explicit FrontierModel(const FrontierProfile &profile)
        : p_(profile)
    {}

    const FrontierProfile &profile() const { return p_; }

    /** Core-bound OLTP ceiling (txn/s) with no OLAP running. */
    double maxTxnRate() const;

    /**
     * Steady-state query duration at transaction rate @p txn_rate
     * (txn/s), solving the consistency fixed point. Returns +inf when
     * the bus cannot sustain the rate.
     */
    TimeNs queryDuration(double txn_rate) const;

    /** The achievable point at @p txn_rate (queries back to back). */
    FrontierPoint evaluate(double txn_rate) const;

    /** Sweep the frontier with @p points samples. */
    std::vector<FrontierPoint> sweep(int points = 32) const;

  private:
    FrontierProfile p_;
};

} // namespace pushtap::htap
