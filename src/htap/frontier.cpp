#include "htap/frontier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "txn/database.hpp"

namespace pushtap::htap {

const TableFrontier *
FrontierVector::find(workload::ChTable t) const
{
    for (const auto &e : tables)
        if (e.table == t)
            return &e;
    return nullptr;
}

FrontierVector
captureFrontier(const txn::Database &db,
                std::vector<workload::ChTable> tables)
{
    std::sort(tables.begin(), tables.end());
    tables.erase(std::unique(tables.begin(), tables.end()),
                 tables.end());
    FrontierVector fv;
    fv.tables.reserve(tables.size());
    for (const auto t : tables) {
        const auto &tbl = db.table(t);
        fv.tables.push_back(TableFrontier{t, tbl.writeEpoch(),
                                          tbl.snapshotEpoch(),
                                          tbl.rewriteEpoch()});
    }
    return fv;
}

double
FrontierModel::maxTxnRate() const
{
    // Core-bound: each core retires one transaction per txnCpuNs.
    return static_cast<double>(p_.cores) / p_.txnCpuNs * 1e9;
}

TimeNs
FrontierModel::queryDuration(double txn_rate) const
{
    const double bus = p_.busBandwidth.bytesPerNs(); // bytes/ns
    const double oltp_demand =
        txn_rate * p_.txnBusBytes / 1e9; // bytes/ns
    const double avail = bus - oltp_demand;
    if (avail <= 0.0)
        return std::numeric_limits<double>::infinity();

    // T = pim + queryBytes/avail
    //       + R * T * vpt * (consBytes/avail + consPimNs).
    const double vpt = p_.versionsPerTxn;
    const double rate_ns = txn_rate / 1e9; // txns per ns
    const double cons_per_txn_ns =
        vpt * (p_.consistencyBusBytesPerVersion / avail +
               p_.consistencyPimNsPerVersion);
    const double base = p_.queryPimNs + p_.queryCpuBusBytes / avail;
    const double k = rate_ns * cons_per_txn_ns;
    if (k >= 1.0)
        return std::numeric_limits<double>::infinity();
    return base / (1.0 - k);
}

FrontierPoint
FrontierModel::evaluate(double txn_rate) const
{
    FrontierPoint pt;
    const TimeNs t_q = queryDuration(txn_rate);
    if (!std::isfinite(t_q))
        return pt; // infeasible: zero throughput both sides

    // Fraction of wall time the OLTP engine is stalled by the OLAP
    // side: bank-locked LS phases always; the whole consistency pass
    // as well for MI.
    double stall = p_.queryCpuBlockedNs / t_q;
    if (p_.consistencyBlocksOltp) {
        const double vpt = p_.versionsPerTxn;
        const double bus = p_.busBandwidth.bytesPerNs();
        const double cons_ns =
            txn_rate / 1e9 * t_q * vpt *
            (p_.consistencyBusBytesPerVersion / bus +
             p_.consistencyPimNsPerVersion);
        stall += cons_ns / t_q;
    }
    stall = std::min(stall, 1.0);

    const double achievable =
        std::min(txn_rate, maxTxnRate() * (1.0 - stall));
    pt.oltpTpmC = achievable * 60.0;
    pt.olapQphH = 3600.0 * 1e9 / t_q;
    return pt;
}

std::vector<FrontierPoint>
FrontierModel::sweep(int points) const
{
    std::vector<FrontierPoint> out;
    const double rmax = maxTxnRate();
    for (int i = 0; i < points; ++i) {
        const double r =
            rmax * static_cast<double>(i) / (points - 1);
        const auto pt = evaluate(r);
        if (pt.olapQphH > 0.0 || pt.oltpTpmC > 0.0)
            out.push_back(pt);
    }
    return out;
}

} // namespace pushtap::htap
