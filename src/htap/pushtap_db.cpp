#include "htap/pushtap_db.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "olap/optimizer.hpp"
#include "workload/query_catalog.hpp"

namespace pushtap::htap {

PushtapDB::PushtapDB(const PushtapOptions &opts) : opts_(opts)
{
    // Tell the engine which instance format it is pricing for, so
    // an auto morselRows resolves against this facade's format (and
    // the optimizer's knob pass retunes from the right default).
    opts_.olap.instanceFormat = opts_.format;
    db_ = std::make_unique<txn::Database>(opts_.database);
    bw_ = std::make_unique<format::BandwidthModel>(
        opts_.database.devices,
        opts_.olap.geom.interleaveGranularity,
        opts_.olap.geom.stripedLines);
    timing_ = std::make_unique<dram::BatchTimingModel>(
        opts_.olap.geom, opts_.olap.timing);
    oltp_ = std::make_unique<txn::TpccEngine>(
        *db_, opts_.format, *bw_, *timing_, opts_.txnSeed);
    olap_ = std::make_unique<olap::OlapEngine>(*db_, opts_.olap);
}

TimeNs
PushtapDB::runDefragPass()
{
    sinceDefrag_ = 0;
    const TimeNs t =
        olap_->runDefragmentation(opts_.defragStrategy);
    defragPauseNs_ += t;
    return t;
}

void
PushtapDB::maybeDefrag()
{
    if (opts_.defragInterval == 0)
        return;
    if (++sinceDefrag_ >= opts_.defragInterval)
        runDefragPass();
}

void
PushtapDB::payments(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        oltp_->executePayment();
        maybeDefrag();
    }
}

void
PushtapDB::newOrders(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        oltp_->executeNewOrder();
        maybeDefrag();
    }
}

void
PushtapDB::mixed(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        oltp_->executeMixed();
        maybeDefrag();
    }
}

txn::TxnStats
PushtapDB::mixedParallel(std::uint64_t n)
{
    if (!oltpGroup_) {
        txn::TxnWorkerGroupOptions gopts;
        gopts.workers = opts_.oltpWorkers;
        gopts.seed = opts_.txnSeed;
        oltpGroup_ = std::make_unique<txn::TxnWorkerGroup>(
            *db_, opts_.format, *bw_, *timing_, gopts);
    }
    oltpGroup_->run(n);

    // Interval defragmentation at batch granularity.
    sinceDefrag_ += n;
    if (opts_.defragInterval != 0 &&
        sinceDefrag_ >= opts_.defragInterval)
        runDefragPass();
    return oltpGroup_->stats();
}

olap::QueryReport
PushtapDB::runQuery(const olap::QueryPlan &plan,
                    olap::QueryResult *result)
{
    olap_->prepareSnapshot(db_->now());
    return olap_->runQuery(plan, result);
}

olap::QueryReport
PushtapDB::runQuery(int ch_query_no, olap::QueryResult *result)
{
    const auto *plan = workload::executableQueryPlan(ch_query_no);
    if (!plan)
        fatal("CH query Q{} is footprint-only (no executable plan "
              "in the catalog yet)",
              ch_query_no);
    return runQuery(*plan, result);
}

std::string
PushtapDB::explainQuery(const olap::QueryPlan &plan)
{
    olap_->prepareSnapshot(db_->now());
    const auto oq = olap_->optimizePlan(plan);
    return olap::describePlan(plan, oq);
}

std::string
PushtapDB::explainQuery(int ch_query_no)
{
    const auto *plan = workload::executableQueryPlan(ch_query_no);
    if (!plan)
        fatal("CH query Q{} is footprint-only (no executable plan "
              "in the catalog yet)",
              ch_query_no);
    return explainQuery(*plan);
}

olap::QueryReport
PushtapDB::q1(std::int64_t delivery_after,
              std::vector<olap::Q1Row> *rows)
{
    olap_->prepareSnapshot(db_->now());
    return olap_->q1(delivery_after, rows);
}

olap::QueryReport
PushtapDB::q6(std::int64_t d_lo, std::int64_t d_hi,
              std::int64_t q_lo, std::int64_t q_hi,
              std::int64_t *revenue)
{
    olap_->prepareSnapshot(db_->now());
    return olap_->q6(d_lo, d_hi, q_lo, q_hi, revenue);
}

olap::QueryReport
PushtapDB::q9(std::vector<olap::Q9Row> *rows)
{
    olap_->prepareSnapshot(db_->now());
    return olap_->q9(rows);
}

TimeNs
PushtapDB::defragment()
{
    return runDefragPass();
}

} // namespace pushtap::htap
