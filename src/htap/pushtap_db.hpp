#pragma once

/**
 * @file
 * PushtapDB: the public facade of the library. One object owns the
 * single-instance database, the OLTP engine (CPU, TPC-C) and the OLAP
 * engine (PIM, CH queries), wired the way section 6.3 describes:
 * commits flush rows to DRAM for freshness, analytical queries
 * snapshot first, and defragmentation runs every N transactions
 * (N = 10k per section 7.4).
 *
 * Analytical queries run through runQuery(): any logical plan
 * (olap/plan.hpp), or a CH query number with an executable catalog
 * plan (workload/query_catalog.hpp). Q1/Q6/Q9 remain as convenience
 * wrappers.
 *
 * Quickstart:
 * @code
 *   htap::PushtapDB db;                       // default small scale
 *   db.mixed(1000);                           // run transactions
 *   auto rep = db.q6(lo, hi, 1, 10, &revenue);  // fresh analytics
 *   olap::QueryResult q12;
 *   db.runQuery(12, &q12);                    // catalog plan
 * @endcode
 *
 * Parallel sharded execution: opts.olap.shards partitions every
 * table into block-aligned bank-stripe shards and opts.olap.workers
 * (0 = hardware) fans the per-shard pipelines out over a worker
 * pool. Results are byte-identical to the single-threaded defaults
 * for any combination; only host wall-clock and the modelled
 * per-shard decomposition (QueryReport::shardBytes / mergeNs)
 * change.
 * @code
 *   htap::PushtapOptions opts;
 *   opts.olap.shards = 4;                     // bank-stripe shards
 *   opts.olap.workers = 0;                    // hardware threads
 *   htap::PushtapDB par(opts);
 * @endcode
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mvcc/defragmenter.hpp"
#include "olap/olap_engine.hpp"
#include "txn/database.hpp"
#include "txn/tpcc_engine.hpp"
#include "txn/txn_worker_group.hpp"

namespace pushtap::htap {

struct PushtapOptions
{
    txn::DatabaseConfig database;
    olap::OlapConfig olap = olap::OlapConfig::pushtapDimm();
    txn::InstanceFormat format = txn::InstanceFormat::Unified;
    /** Defragment every this many transactions (section 7.4). */
    std::uint64_t defragInterval = 10'000;
    mvcc::DefragStrategy defragStrategy = mvcc::DefragStrategy::Hybrid;
    std::uint64_t txnSeed = 7;
    /**
     * Worker threads of the concurrent OLTP front end used by
     * mixedParallel() (0 = hardware threads). The serial paths
     * (payments/newOrders/mixed) are unaffected.
     */
    std::uint32_t oltpWorkers = 1;
};

class PushtapDB
{
  public:
    explicit PushtapDB(const PushtapOptions &opts = {});

    txn::Database &database() { return *db_; }
    const txn::Database &database() const { return *db_; }
    txn::TpccEngine &oltp() { return *oltp_; }
    olap::OlapEngine &olap() { return *olap_; }
    const PushtapOptions &options() const { return opts_; }

    /** Run @p n Payment transactions. */
    void payments(std::uint64_t n);

    /** Run @p n New-Order transactions. */
    void newOrders(std::uint64_t n);

    /** Run @p n transactions of the 50/50 mix. */
    void mixed(std::uint64_t n);

    /**
     * Run @p n transactions of the 50/50 mix through the concurrent
     * worker group (opts.oltpWorkers threads, partitioned by home
     * warehouse/district). Same serial schedule semantics — with one
     * worker it is bit-identical to mixed() on a fresh engine; the
     * per-batch interval defragmentation still applies. Returns the
     * group's cumulative merged worker statistics.
     */
    txn::TxnStats mixedParallel(std::uint64_t n);

    /**
     * Fresh analytical query: snapshot at the current commit
     * timestamp first, then execute @p plan through the operator
     * pipeline. Data freshness is exact: every committed transaction
     * is visible. With opts.olap.resultCache on, repeated plans may
     * be served from the frontier-keyed result cache — freshness is
     * unaffected, because any commit, snapshot flip or
     * defragmentation move since the cached run changes the frontier
     * vector and forces re-execution; a served answer is always
     * byte-identical to a cold run at the current snapshot
     * (QueryReport::cacheHit / incrementalRows record the path).
     */
    olap::QueryReport runQuery(const olap::QueryPlan &plan,
                               olap::QueryResult *result = nullptr);

    /**
     * Run the catalog's executable plan of CH query @p ch_query_no
     * (fatal for footprint-only queries).
     */
    olap::QueryReport runQuery(int ch_query_no,
                               olap::QueryResult *result = nullptr);

    /**
     * EXPLAIN: snapshot at the current commit timestamp, run the
     * adaptive optimizer over @p plan (regardless of the configured
     * `optimize` flag — this only describes, it never executes) and
     * return the describePlan() dump of the chosen physical plan and
     * decision record.
     */
    std::string explainQuery(const olap::QueryPlan &plan);

    /** EXPLAIN the catalog plan of CH query @p ch_query_no. */
    std::string explainQuery(int ch_query_no);

    /** Q1/Q6/Q9 convenience wrappers over runQuery(). */
    olap::QueryReport q1(std::int64_t delivery_after,
                         std::vector<olap::Q1Row> *rows = nullptr);
    olap::QueryReport q6(std::int64_t d_lo, std::int64_t d_hi,
                         std::int64_t q_lo, std::int64_t q_hi,
                         std::int64_t *revenue = nullptr);
    olap::QueryReport q9(std::vector<olap::Q9Row> *rows = nullptr);

    /** Force a defragmentation pass now. */
    TimeNs defragment();

    /** Total time OLTP has been paused by defragmentation. */
    TimeNs oltpDefragPauseNs() const { return defragPauseNs_; }

    std::uint64_t transactionsSinceDefrag() const
    {
        return sinceDefrag_;
    }

  private:
    void maybeDefrag();

    /**
     * The one defragmentation path (automatic and forced): the pass
     * time is charged to the OLTP pause only — the next query pays
     * its snapshot through the engine's pending-consistency charge,
     * never the defragmentation itself — and the interval counter
     * resets, so a forced pass cannot double-count with the
     * automatic one.
     */
    TimeNs runDefragPass();

    PushtapOptions opts_;
    std::unique_ptr<txn::Database> db_;
    std::unique_ptr<format::BandwidthModel> bw_;
    std::unique_ptr<dram::BatchTimingModel> timing_;
    std::unique_ptr<txn::TpccEngine> oltp_;
    std::unique_ptr<txn::TxnWorkerGroup> oltpGroup_;
    std::unique_ptr<olap::OlapEngine> olap_;
    std::uint64_t sinceDefrag_ = 0;
    TimeNs defragPauseNs_ = 0.0;
};

} // namespace pushtap::htap
