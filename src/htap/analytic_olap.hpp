#pragma once

/**
 * @file
 * Analytic query pricing for the comparison systems of Fig. 9(b):
 *
 *  - *Ideal*: all columns already compact, execution time is scanning
 *    time only (no consistency work).
 *  - *MI*: the multi-instance PIM-based design (Polynesia-style [6])
 *    adapted to the same general-purpose DIMM PIM as PUSHtap: a
 *    row-store instance in CPU memory plus a column-store instance in
 *    PIM memory that must be *rebuilt* from the transaction log
 *    before a query can see fresh data.
 *
 * Both systems answer queries identically to the single-instance
 * engine by construction, so only times are modelled here: runQuery()
 * walks the same logical plans (olap/plan.hpp) the engine executes
 * and prices every operator on clean packed columns. Q1/Q6/Q9 remain
 * as plan wrappers.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dram/timing_model.hpp"
#include "mvcc/version_manager.hpp"
#include "olap/plan.hpp"
#include "olap/query_report.hpp"
#include "pim/two_phase.hpp"
#include "txn/database.hpp"

namespace pushtap::htap {

/** Which comparison system prices the query. */
enum class BaselineKind : std::uint8_t
{
    Ideal,
    MultiInstance,
    /** MI with the dedicated rebuild accelerator (MI (HBM), [6]). */
    MultiInstanceAccel,
};

/**
 * Baseline query report: the shared OLAP report shape, with
 * consistencyNs carrying the column-store rebuild time (zero for
 * Ideal) and the engine-only fields (cpuBlockedNs, rowsVisible) left
 * at zero.
 */
using BaselineReport = olap::QueryReport;

class AnalyticOlapModel
{
  public:
    AnalyticOlapModel(const txn::Database &db,
                      const dram::Geometry &geom,
                      const dram::TimingParams &timing,
                      const pim::PimConfig &pim_cfg,
                      const pim::OffloadOverheads &overheads,
                      double accel_speedup = 5.0);

    /**
     * Scan time of @p width-byte column over @p rows at 100%
     * efficiency (the clean column-store instance).
     */
    pim::TwoPhaseSchedule idealColumnScan(std::uint64_t rows,
                                          std::uint32_t width) const;

    /**
     * Price @p plan on clean packed columns over current table
     * sizes: one ideal scan per predicate / group / aggregate
     * column, hash + partition + probe work per join, plus the
     * consistency charge of @p kind.
     */
    BaselineReport runQuery(BaselineKind kind,
                            const olap::QueryPlan &plan,
                            std::uint64_t pending_versions) const;

    /** Q1/Q6/Q9 plan wrappers (predicate values do not affect cost). */
    BaselineReport q1(BaselineKind kind,
                      std::uint64_t pending_versions) const;
    BaselineReport q6(BaselineKind kind,
                      std::uint64_t pending_versions) const;
    BaselineReport q9(BaselineKind kind,
                      std::uint64_t pending_versions) const;

    /**
     * Rebuild cost for @p versions pending transactions: the CPU
     * transfers every new-versioned row plus its metadata to the PIM
     * DRAM banks, then PIM units merge the metadata and copy the
     * rows into the column-store instance (section 7.3.2).
     */
    TimeNs rebuildTime(std::uint64_t versions, bool accel) const;

  private:
    TimeNs consistency(BaselineKind kind,
                       std::uint64_t pending_versions) const;

    const txn::Database &db_;
    dram::Geometry geom_;
    dram::BatchTimingModel timing_;
    pim::PimConfig pimCfg_;
    pim::TwoPhaseModel twoPhase_;
    double accelSpeedup_;
};

} // namespace pushtap::htap
