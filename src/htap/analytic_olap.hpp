#pragma once

/**
 * @file
 * Analytic query pricing for the comparison systems of Fig. 9(b):
 *
 *  - *Ideal*: all columns already compact, execution time is scanning
 *    time only (no consistency work).
 *  - *MI*: the multi-instance PIM-based design (Polynesia-style [6])
 *    adapted to the same general-purpose DIMM PIM as PUSHtap: a
 *    row-store instance in CPU memory plus a column-store instance in
 *    PIM memory that must be *rebuilt* from the transaction log
 *    before a query can see fresh data.
 *
 * Both systems answer queries identically to the single-instance
 * engine by construction, so only times are modelled here.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dram/timing_model.hpp"
#include "mvcc/version_manager.hpp"
#include "pim/two_phase.hpp"
#include "txn/database.hpp"

namespace pushtap::htap {

/** Which comparison system prices the query. */
enum class BaselineKind : std::uint8_t
{
    Ideal,
    MultiInstance,
    /** MI with the dedicated rebuild accelerator (MI (HBM), [6]). */
    MultiInstanceAccel,
};

struct BaselineReport
{
    std::string name;
    TimeNs pimNs = 0.0;
    TimeNs cpuNs = 0.0;
    TimeNs consistencyNs = 0.0; ///< Rebuild time (zero for Ideal).

    TimeNs
    totalNs() const
    {
        return pimNs + cpuNs + consistencyNs;
    }
};

class AnalyticOlapModel
{
  public:
    AnalyticOlapModel(const txn::Database &db,
                      const dram::Geometry &geom,
                      const dram::TimingParams &timing,
                      const pim::PimConfig &pim_cfg,
                      const pim::OffloadOverheads &overheads,
                      double accel_speedup = 5.0);

    /**
     * Scan time of @p width-byte column over @p rows at 100%
     * efficiency (the clean column-store instance).
     */
    pim::TwoPhaseSchedule idealColumnScan(std::uint64_t rows,
                                          std::uint32_t width) const;

    /** Q1/Q6/Q9 priced on clean columns over current table sizes. */
    BaselineReport q1(BaselineKind kind,
                      std::uint64_t pending_versions) const;
    BaselineReport q6(BaselineKind kind,
                      std::uint64_t pending_versions) const;
    BaselineReport q9(BaselineKind kind,
                      std::uint64_t pending_versions) const;

    /**
     * Rebuild cost for @p versions pending transactions: the CPU
     * transfers every new-versioned row plus its metadata to the PIM
     * DRAM banks, then PIM units merge the metadata and copy the
     * rows into the column-store instance (section 7.3.2).
     */
    TimeNs rebuildTime(std::uint64_t versions, bool accel) const;

  private:
    TimeNs consistency(BaselineKind kind,
                       std::uint64_t pending_versions) const;

    const txn::Database &db_;
    dram::Geometry geom_;
    dram::BatchTimingModel timing_;
    pim::PimConfig pimCfg_;
    pim::TwoPhaseModel twoPhase_;
    double accelSpeedup_;
};

} // namespace pushtap::htap
