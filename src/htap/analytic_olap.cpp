#include "htap/analytic_olap.hpp"

#include <cstdint>
#include <string>

#include "workload/ch_schema.hpp"

namespace pushtap::htap {

using workload::ChTable;

AnalyticOlapModel::AnalyticOlapModel(
    const txn::Database &db, const dram::Geometry &geom,
    const dram::TimingParams &timing, const pim::PimConfig &pim_cfg,
    const pim::OffloadOverheads &overheads, double accel_speedup)
    : db_(db), geom_(geom), timing_(geom, timing), pimCfg_(pim_cfg),
      twoPhase_(pim::CostModel(pim_cfg), overheads),
      accelSpeedup_(accel_speedup)
{
}

pim::TwoPhaseSchedule
AnalyticOlapModel::idealColumnScan(std::uint64_t rows,
                                   std::uint32_t width) const
{
    const Bytes total = rows * width;
    const std::uint32_t units = geom_.totalPimUnits();
    const Bytes per_unit = (total + units - 1) / units;
    return twoPhase_.schedule(pim::OpType::Filter, per_unit, width);
}

TimeNs
AnalyticOlapModel::rebuildTime(std::uint64_t versions,
                               bool accel) const
{
    if (versions == 0)
        return 0.0;
    // Average row bytes across the write-heavy tables.
    const auto &lines = db_.table(ChTable::OrderLine);
    const Bytes row_bytes = lines.schema().rowBytes();

    // CPU pushes rows + metadata over the bus...
    const Bytes transfer =
        versions * (row_bytes + mvcc::kMetadataBytes);
    TimeNs t = timing_.cpuPeakBandwidth().transferTime(transfer);
    // ...then the PIM units merge metadata and install the rows into
    // the column store (read + write inside the banks).
    const Bytes pim_moved =
        versions * (2 * row_bytes + mvcc::kMetadataBytes);
    t += timing_
             .pimAggregateBandwidth(pimCfg_.streamBandwidth)
             .transferTime(pim_moved);
    // The general-purpose units also re-execute the merge logic.
    pim::CostModel cm(pimCfg_);
    t += cm.computeTime(pim::OpType::Defragment,
                        versions * row_bytes /
                            geom_.totalPimUnits());
    return accel ? t / accelSpeedup_ : t;
}

TimeNs
AnalyticOlapModel::consistency(BaselineKind kind,
                               std::uint64_t pending_versions) const
{
    switch (kind) {
      case BaselineKind::Ideal:
        return 0.0;
      case BaselineKind::MultiInstance:
        return rebuildTime(pending_versions, false);
      case BaselineKind::MultiInstanceAccel:
        return rebuildTime(pending_versions, true);
    }
    return 0.0;
}

namespace {

const char *
kindName(BaselineKind k)
{
    switch (k) {
      case BaselineKind::Ideal: return "Ideal";
      case BaselineKind::MultiInstance: return "MI";
      case BaselineKind::MultiInstanceAccel: return "MI(accel)";
    }
    return "?";
}

} // namespace

BaselineReport
AnalyticOlapModel::q1(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    const auto &tbl = db_.table(ChTable::OrderLine);
    const std::uint64_t rows = tbl.usedDataRows();
    BaselineReport rep;
    rep.name = std::string(kindName(kind)) + "/Q1";
    for (std::uint32_t w : {8u, 1u, 2u, 8u}) // delivery,number,qty,amt
        rep.pimNs += idealColumnScan(rows, w).total();
    rep.cpuNs += timing_.cpuPeakBandwidth().transferTime(rows * 2);
    rep.consistencyNs = consistency(kind, pending_versions);
    return rep;
}

BaselineReport
AnalyticOlapModel::q6(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    const auto &tbl = db_.table(ChTable::OrderLine);
    const std::uint64_t rows = tbl.usedDataRows();
    BaselineReport rep;
    rep.name = std::string(kindName(kind)) + "/Q6";
    for (std::uint32_t w : {8u, 2u, 8u}) // delivery, qty, amount
        rep.pimNs += idealColumnScan(rows, w).total();
    rep.cpuNs += timing_.cpuPeakBandwidth().transferTime(
        static_cast<Bytes>(geom_.totalPimUnits()) * 8);
    rep.consistencyNs = consistency(kind, pending_versions);
    return rep;
}

BaselineReport
AnalyticOlapModel::q9(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    const auto &lines = db_.table(ChTable::OrderLine);
    const auto &items = db_.table(ChTable::Item);
    const std::uint64_t n_lines = lines.usedDataRows();
    const std::uint64_t n_items = items.usedDataRows();

    BaselineReport rep;
    rep.name = std::string(kindName(kind)) + "/Q9";
    rep.pimNs += idealColumnScan(n_items, 4).total();  // hash i_id
    rep.pimNs += idealColumnScan(n_items, 50).total(); // i_data filter
    rep.pimNs += idealColumnScan(n_lines, 4).total();  // hash ol_i_id
    rep.pimNs += idealColumnScan(n_lines, 8).total();  // amount agg
    rep.pimNs += idealColumnScan(n_lines, 2).total();  // supply group
    pim::CostModel cm(pimCfg_);
    rep.pimNs += cm.computeTime(pim::OpType::Join,
                                (n_items + n_lines) /
                                        geom_.totalPimUnits() +
                                    1);
    rep.cpuNs += 2.0 * timing_.cpuPeakBandwidth().transferTime(
                           (n_items + n_lines) * 4);
    rep.consistencyNs = consistency(kind, pending_versions);
    return rep;
}

} // namespace pushtap::htap
