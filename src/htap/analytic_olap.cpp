#include "htap/analytic_olap.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "workload/ch_schema.hpp"

namespace pushtap::htap {

using workload::ChTable;

AnalyticOlapModel::AnalyticOlapModel(
    const txn::Database &db, const dram::Geometry &geom,
    const dram::TimingParams &timing, const pim::PimConfig &pim_cfg,
    const pim::OffloadOverheads &overheads, double accel_speedup)
    : db_(db), geom_(geom), timing_(geom, timing), pimCfg_(pim_cfg),
      twoPhase_(pim::CostModel(pim_cfg), overheads),
      accelSpeedup_(accel_speedup)
{
}

pim::TwoPhaseSchedule
AnalyticOlapModel::idealColumnScan(std::uint64_t rows,
                                   std::uint32_t width) const
{
    const Bytes total = rows * width;
    const std::uint32_t units = geom_.totalPimUnits();
    const Bytes per_unit = (total + units - 1) / units;
    return twoPhase_.schedule(pim::OpType::Filter, per_unit, width);
}

TimeNs
AnalyticOlapModel::rebuildTime(std::uint64_t versions,
                               bool accel) const
{
    if (versions == 0)
        return 0.0;
    // Average row bytes across the write-heavy tables.
    const auto &lines = db_.table(ChTable::OrderLine);
    const Bytes row_bytes = lines.schema().rowBytes();

    // CPU pushes rows + metadata over the bus...
    const Bytes transfer =
        versions * (row_bytes + mvcc::kMetadataBytes);
    TimeNs t = timing_.cpuPeakBandwidth().transferTime(transfer);
    // ...then the PIM units merge metadata and install the rows into
    // the column store (read + write inside the banks).
    const Bytes pim_moved =
        versions * (2 * row_bytes + mvcc::kMetadataBytes);
    t += timing_
             .pimAggregateBandwidth(pimCfg_.streamBandwidth)
             .transferTime(pim_moved);
    // The general-purpose units also re-execute the merge logic.
    pim::CostModel cm(pimCfg_);
    t += cm.computeTime(pim::OpType::Defragment,
                        versions * row_bytes /
                            geom_.totalPimUnits());
    return accel ? t / accelSpeedup_ : t;
}

TimeNs
AnalyticOlapModel::consistency(BaselineKind kind,
                               std::uint64_t pending_versions) const
{
    switch (kind) {
      case BaselineKind::Ideal:
        return 0.0;
      case BaselineKind::MultiInstance:
        return rebuildTime(pending_versions, false);
      case BaselineKind::MultiInstanceAccel:
        return rebuildTime(pending_versions, true);
    }
    return 0.0;
}

namespace {

const char *
kindName(BaselineKind k)
{
    switch (k) {
      case BaselineKind::Ideal: return "Ideal";
      case BaselineKind::MultiInstance: return "MI";
      case BaselineKind::MultiInstanceAccel: return "MI(accel)";
    }
    return "?";
}

} // namespace

BaselineReport
AnalyticOlapModel::runQuery(BaselineKind kind,
                            const olap::QueryPlan &plan,
                            std::uint64_t pending_versions) const
{
    olap::validatePlan(plan);

    BaselineReport rep;
    rep.name = std::string(kindName(kind)) + "/" + plan.name;

    auto rows_of = [this](ChTable t) {
        return db_.table(t).usedDataRows();
    };
    auto width_of = [this](ChTable t, const std::string &col) {
        const auto &s = db_.table(t).schema();
        return s.column(s.columnId(col)).width;
    };
    // Clean packed columns: every operator input is one ideal scan,
    // char predicates included (the column-store instance scans them
    // in PIM, unlike the single-instance engine's CPU gather).
    auto scan = [&](ChTable t, const std::string &col) {
        rep.pimNs += idealColumnScan(rows_of(t), width_of(t, col))
                         .total();
    };
    // Expression predicates charge one ideal scan per distinct
    // referenced column (the column-store instance scans Char LIKE
    // targets in PIM too, unlike the single-instance CPU gather).
    auto scan_exprs = [&](workload::ChTable table,
                          const std::vector<olap::ExprPtr> &exprs) {
        std::set<std::string> int_cols, char_cols;
        olap::collectExprColumns(exprs, int_cols, char_cols);
        for (const auto &name : int_cols)
            scan(table, name);
        for (const auto &name : char_cols)
            scan(table, name);
    };
    auto scan_input = [&](const olap::TableInput &in) {
        for (const auto &p : in.intPredicates)
            scan(in.table, p.column);
        for (const auto &p : in.charPredicates)
            scan(in.table, p.column);
        scan_exprs(in.table, in.exprPredicates);
    };

    // Scalar-subquery pre-passes: source filters, group keys,
    // aggregate inputs, and the probe-side key lookup columns.
    for (const auto &sub : plan.subqueries) {
        scan_input(sub.source);
        for (const auto &col : sub.groupBy)
            scan(sub.source.table, col);
        std::vector<olap::ExprPtr> inputs;
        for (const auto &agg : sub.aggs)
            inputs.push_back(agg.value);
        scan_exprs(sub.source.table, inputs);
        std::set<std::string> key_cols;
        for (const auto &key : sub.keys)
            key_cols.insert(key.column);
        for (const auto &name : key_cols)
            scan(plan.probe.table, name);
    }

    scan_input(plan.probe);
    const std::uint64_t probe_rows = rows_of(plan.probe.table);
    for (const auto &join : plan.joins) {
        scan_input(join.build);
        for (const auto &[build_col, ref] : join.keys) {
            scan(join.build.table, build_col);
            scan(olap::tableOf(plan, ref), ref.column);
        }
        const std::uint64_t build_rows = rows_of(join.build.table);
        pim::CostModel cm(pimCfg_);
        rep.pimNs += cm.computeTime(
            pim::OpType::Join,
            (build_rows + probe_rows) / geom_.totalPimUnits() + 1);
        rep.cpuNs += 2.0 * timing_.cpuPeakBandwidth().transferTime(
                               (build_rows + probe_rows) * 4);
    }
    for (const auto &key : plan.groupBy)
        scan(olap::tableOf(plan, key), key.column);
    for (const auto &agg : plan.aggregates) {
        if (agg.expr) {
            std::set<std::pair<workload::ChTable, std::string>>
                cols;
            olap::forEachColumnRef(
                *agg.expr,
                [&cols, &plan](const olap::ColRef &ref, bool) {
                    cols.emplace(olap::tableOf(plan, ref),
                                 ref.column);
                });
            for (const auto &[table, name] : cols)
                scan(table, name);
        } else {
            scan(olap::tableOf(plan, agg.value), agg.value.column);
        }
    }

    // CPU merge: joined plans already paid the bucket partition; a
    // grouped scan ships one 2 B group index per row; an ungrouped
    // scan merges one partial value per unit per aggregate.
    if (plan.joins.empty()) {
        if (!plan.groupBy.empty()) {
            rep.cpuNs += timing_.cpuPeakBandwidth().transferTime(
                probe_rows * 2);
        } else {
            const auto naggs = std::max<std::size_t>(
                1, plan.aggregates.size());
            rep.cpuNs += timing_.cpuPeakBandwidth().transferTime(
                static_cast<Bytes>(geom_.totalPimUnits()) * 8 *
                naggs);
        }
    }

    rep.consistencyNs = consistency(kind, pending_versions);
    return rep;
}

BaselineReport
AnalyticOlapModel::q1(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    return runQuery(kind, olap::plans::q1(), pending_versions);
}

BaselineReport
AnalyticOlapModel::q6(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    return runQuery(kind, olap::plans::q6(), pending_versions);
}

BaselineReport
AnalyticOlapModel::q9(BaselineKind kind,
                      std::uint64_t pending_versions) const
{
    return runQuery(kind, olap::plans::q9(), pending_versions);
}

} // namespace pushtap::htap
