#include "sim/event_queue.hpp"

#include <cstdint>
#include <utility>

#include "common/log.hpp"

namespace pushtap::sim {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past: {} < {}", when, now_);
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // Copy out before pop so the callback may schedule more events.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t executed = 0;
    while (step())
        ++executed;
    return executed;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t executed = 0;
    while (!heap_.empty() && heap_.top().when <= limit) {
        step();
        ++executed;
    }
    if (now_ < limit)
        now_ = limit;
    return executed;
}

} // namespace pushtap::sim
