#pragma once

/**
 * @file
 * Discrete-event simulation kernel. A minimal gem5-style event queue:
 * events are callbacks scheduled at absolute ticks; ties are broken by
 * insertion order so simulations are deterministic.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pushtap::sim {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time in ticks (1 tick == 1 ps). */
    Tick now() const { return now_; }

    TimeNs nowNs() const { return ticksToNs(now_); }

    /** Schedule @p cb at absolute tick @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    void
    scheduleAfterNs(TimeNs delay_ns, Callback cb)
    {
        scheduleAfter(nsToTicks(delay_ns), std::move(cb));
    }

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    std::size_t pending() const { return heap_.size(); }

    /** Run a single event; returns false if the queue was empty. */
    bool step();

    /** Run until the queue drains. Returns number of events executed. */
    std::uint64_t run();

    /**
     * Run until the queue drains or simulated time exceeds @p limit.
     * Events scheduled at exactly @p limit still execute.
     */
    std::uint64_t runUntil(Tick limit);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace pushtap::sim
