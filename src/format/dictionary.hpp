#pragma once

/**
 * @file
 * Per-column dictionary codec for low-cardinality Char columns.
 *
 * A dictionary is *frozen*: it is built once from the populated rows
 * (load time, single-threaded) and its value table never changes
 * afterwards. Rows written after the freeze are encoded by read-only
 * lookup; a value absent from the frozen table gets the in-range
 * *sentinel* code `cardinality()`, which tells readers to fall back
 * to the raw byte path for that row. This keeps the concurrent-write
 * discipline identical to the byte regions (writers touch only rows
 * that are not yet visible) while predicates evaluate over packed int
 * codes instead of gathered 8-24 byte payloads.
 *
 * Codes are stored little-endian at the narrowest width that can hold
 * `cardinality() + 1` values (sentinel included): 1, 2 or 4 bytes.
 * That width is also what the PIM scan-cost model charges for a
 * dictionary-encoded column scan.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pushtap::format {

class ColumnDictionary
{
  public:
    /**
     * Build a frozen dictionary over @p distinct fixed-width values
     * (each exactly @p width bytes, concatenated). Values are sorted
     * bytewise so codes are deterministic for a given value set.
     */
    ColumnDictionary(std::uint32_t width,
                     std::vector<std::string> distinct);

    std::uint32_t width() const { return width_; }
    std::uint32_t cardinality() const { return cardinality_; }

    /** The sentinel code marking "value not in the frozen table". */
    std::uint32_t sentinel() const { return cardinality_; }

    /** Bytes per stored code (narrowest fit for cardinality+1). */
    std::uint32_t codeWidthBytes() const { return codeWidth_; }

    /** Code for @p bytes, or sentinel() if not in the frozen table. */
    std::uint32_t encode(std::span<const std::uint8_t> bytes) const;

    /** Raw bytes of @p code (must be < cardinality()). */
    std::span<const std::uint8_t> value(std::uint32_t code) const;

    /**
     * Evaluate @p pred once per distinct value, producing a match
     * table of `cardinality() + 1` entries (1 = match). The sentinel
     * entry is always 0: rows carrying the sentinel code must be
     * re-evaluated against their raw bytes by the caller.
     */
    std::vector<std::uint32_t> matchTable(
        const std::function<bool(std::span<const std::uint8_t>)>
            &pred) const;

  private:
    std::uint32_t width_;
    std::uint32_t cardinality_;
    std::uint32_t codeWidth_;
    std::vector<std::uint8_t> values_; ///< cardinality * width bytes.
    std::unordered_map<std::string, std::uint32_t> codeOf_;
};

/**
 * Incremental distinct-value collector used while scanning a column
 * at build time. Gives up (returns false from add()) as soon as the
 * distinct count exceeds @p max_cardinality, so high-cardinality
 * columns cost one early-exiting pass, not a full scan.
 */
class DictionaryBuilder
{
  public:
    DictionaryBuilder(std::uint32_t width,
                      std::uint32_t max_cardinality)
        : width_(width), maxCardinality_(max_cardinality)
    {
    }

    /** Record one value; false once cardinality exceeds the cap. */
    bool add(std::span<const std::uint8_t> bytes);

    bool overflowed() const { return overflowed_; }

    /** Consume the collected set into a frozen dictionary. */
    std::optional<ColumnDictionary> freeze() &&;

  private:
    std::uint32_t width_;
    std::uint32_t maxCardinality_;
    bool overflowed_ = false;
    std::unordered_map<std::string, std::uint32_t> seen_;
};

} // namespace pushtap::format
