#include "format/dictionary.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace pushtap::format {

namespace {

std::uint32_t
codeWidthFor(std::uint32_t code_count)
{
    if (code_count <= (1u << 8))
        return 1;
    if (code_count <= (1u << 16))
        return 2;
    return 4;
}

} // namespace

ColumnDictionary::ColumnDictionary(std::uint32_t width,
                                   std::vector<std::string> distinct)
    : width_(width)
{
    std::sort(distinct.begin(), distinct.end());
    cardinality_ = static_cast<std::uint32_t>(distinct.size());
    codeWidth_ = codeWidthFor(cardinality_ + 1);
    values_.reserve(static_cast<std::size_t>(cardinality_) * width_);
    codeOf_.reserve(cardinality_);
    for (std::uint32_t c = 0; c < cardinality_; ++c) {
        const std::string &v = distinct[c];
        if (v.size() != width_)
            fatal("dictionary value width {} != column width {}",
                  v.size(), width_);
        values_.insert(values_.end(), v.begin(), v.end());
        codeOf_.emplace(v, c);
    }
}

std::uint32_t
ColumnDictionary::encode(std::span<const std::uint8_t> bytes) const
{
    const std::string key(bytes.begin(),
                          bytes.begin() + width_);
    const auto it = codeOf_.find(key);
    return it == codeOf_.end() ? sentinel() : it->second;
}

std::span<const std::uint8_t>
ColumnDictionary::value(std::uint32_t code) const
{
    return std::span<const std::uint8_t>(values_)
        .subspan(static_cast<std::size_t>(code) * width_, width_);
}

std::vector<std::uint32_t>
ColumnDictionary::matchTable(
    const std::function<bool(std::span<const std::uint8_t>)> &pred)
    const
{
    std::vector<std::uint32_t> lut(cardinality_ + 1, 0);
    for (std::uint32_t c = 0; c < cardinality_; ++c)
        lut[c] = pred(value(c)) ? 1u : 0u;
    return lut;
}

bool
DictionaryBuilder::add(std::span<const std::uint8_t> bytes)
{
    if (overflowed_)
        return false;
    std::string key(bytes.begin(), bytes.begin() + width_);
    seen_.emplace(std::move(key), 0u);
    if (seen_.size() > maxCardinality_) {
        overflowed_ = true;
        seen_.clear();
        return false;
    }
    return true;
}

std::optional<ColumnDictionary>
DictionaryBuilder::freeze() &&
{
    if (overflowed_ || seen_.empty())
        return std::nullopt;
    std::vector<std::string> distinct;
    distinct.reserve(seen_.size());
    for (auto &kv : seen_)
        distinct.push_back(kv.first);
    return ColumnDictionary(width_, std::move(distinct));
}

} // namespace pushtap::format
