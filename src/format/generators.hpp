#pragma once

/**
 * @file
 * Unified-format generators (section 4.1).
 *
 * naiveAligned: every column gets its own device slot, padded to the
 * widest column of its part (Fig. 3(b)).
 *
 * compactAligned: the bin-packing strategy of Fig. 4. Per iteration:
 * (1) start a part from the widest remaining key column, fixing the
 * part's row width w; (2) add further key columns of width >= th * w,
 * one per slot, widest first; (3) fill every leftover byte (key-slot
 * tails and empty slots) with fragments of normal columns, which are
 * divisible to byte granularity; residual normal bytes pack into a
 * final compact part of width ceil(remaining / d).
 */

#include <cstdint>

#include "format/layout.hpp"
#include "format/schema.hpp"

namespace pushtap::format {

/** Generate the naive aligned format of Fig. 3(b). */
TableLayout naiveAligned(const TableSchema &schema,
                         std::uint32_t devices);

/**
 * Generate the compact aligned format of Fig. 4.
 *
 * @param th  Threshold hyperparameter in [0, 1]: a key column may
 *            join a part of row width w only if width >= th * w.
 */
TableLayout compactAligned(const TableSchema &schema,
                           std::uint32_t devices, double th);

} // namespace pushtap::format
