#pragma once

/**
 * @file
 * Table schema model. Columns are fixed-width (variable-width data is
 * handled by traditional length-prefix methods per section 4.1.2 and
 * modelled here as fixed reserved widths). A column is a *key column*
 * when some analytical query in the configured OLAP workload scans it
 * (section 4.1.2); all other columns are *normal columns* that the
 * compact aligned format may split across devices.
 */

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pushtap::format {

/** Value interpretation for the functional engine. */
enum class ColType : std::uint8_t
{
    Int,  ///< Little-endian signed integer, width 1..8.
    Char, ///< Raw bytes (fixed-width strings, addresses, ...).
};

struct Column
{
    std::string name;
    std::uint32_t width;   ///< Bytes.
    ColType type = ColType::Char;
    bool isKey = false;    ///< Scanned by the OLAP workload.
};

/**
 * Decode one column value from its raw little-endian bytes:
 * sign-extended for Int columns narrower than 8 bytes, raw bit
 * pattern otherwise. @p bytes must hold at least col.width bytes.
 * This is the single typed-read primitive shared by the row views,
 * the table store and the OLAP operators.
 */
std::int64_t decodeValue(const Column &col,
                         std::span<const std::uint8_t> bytes);

class TableSchema
{
  public:
    TableSchema() = default;
    TableSchema(std::string name, std::vector<Column> columns);

    const std::string &name() const { return name_; }
    const std::vector<Column> &columns() const { return columns_; }
    const Column &column(ColumnId id) const { return columns_.at(id); }
    std::size_t columnCount() const { return columns_.size(); }

    /** Look up a column id by name; fatal() if absent. */
    ColumnId columnId(const std::string &name) const;

    /** True if @p name names a column. */
    bool hasColumn(const std::string &name) const;

    /** Total bytes of one row (no padding). */
    std::uint32_t rowBytes() const { return rowBytes_; }

    /** Byte offset of column @p id in the canonical packed row. */
    std::uint32_t canonicalOffset(ColumnId id) const
    {
        return offsets_.at(id);
    }

    /** Mark the set of key columns (clears previous marks). */
    void setKeyColumns(const std::vector<std::string> &names);

    /** Mark every column as a key column (degrades to naive format). */
    void setAllKeys();

    std::vector<ColumnId> keyColumnIds() const;
    std::vector<ColumnId> normalColumnIds() const;

  private:
    std::string name_;
    std::vector<Column> columns_;
    std::vector<std::uint32_t> offsets_;
    std::uint32_t rowBytes_ = 0;
};

} // namespace pushtap::format
