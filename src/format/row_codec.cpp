#include "format/row_codec.hpp"

#include <cstdint>
#include <span>

#include "common/log.hpp"

namespace pushtap::format {

void
RowCodec::scatter(RowId r, std::span<const std::uint8_t> row,
                  const Writer &write) const
{
    const auto &schema = layout_->schema();
    if (row.size() < schema.rowBytes())
        panic("scatter: row buffer {} < row bytes {}", row.size(),
              schema.rowBytes());

    const auto &parts = layout_->parts();
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
        const Part &part = parts[p];
        const std::uint64_t base =
            static_cast<std::uint64_t>(r) * part.rowWidth;
        for (std::uint32_t s = 0; s < part.slots.size(); ++s) {
            const std::uint32_t dev = circulant_.deviceFor(s, r);
            std::uint32_t off = 0;
            for (const auto &f : part.slots[s].fragments) {
                const std::uint32_t src =
                    schema.canonicalOffset(f.column) + f.byteOffset;
                write(p, dev, base + off,
                      row.subspan(src, f.byteCount));
                off += f.byteCount;
            }
        }
    }
}

void
RowCodec::gather(RowId r, const Reader &read,
                 std::span<std::uint8_t> row) const
{
    const auto &schema = layout_->schema();
    if (row.size() < schema.rowBytes())
        panic("gather: row buffer {} < row bytes {}", row.size(),
              schema.rowBytes());

    const auto &parts = layout_->parts();
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
        const Part &part = parts[p];
        const std::uint64_t base =
            static_cast<std::uint64_t>(r) * part.rowWidth;
        for (std::uint32_t s = 0; s < part.slots.size(); ++s) {
            const std::uint32_t dev = circulant_.deviceFor(s, r);
            std::uint32_t off = 0;
            for (const auto &f : part.slots[s].fragments) {
                const std::uint32_t dst =
                    schema.canonicalOffset(f.column) + f.byteOffset;
                read(p, dev, base + off,
                     row.subspan(dst, f.byteCount));
                off += f.byteCount;
            }
        }
    }
}

std::uint32_t
RowCodec::fragmentsPerRow() const
{
    std::uint32_t n = 0;
    for (const auto &part : layout_->parts())
        for (const auto &slot : part.slots)
            n += static_cast<std::uint32_t>(slot.fragments.size());
    return n;
}

} // namespace pushtap::format
