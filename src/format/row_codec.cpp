#include "format/row_codec.hpp"

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/log.hpp"

namespace pushtap::format {

namespace {

/** Fixed-width little-endian loads the compiler can vectorize. */
template <typename T>
void
decodeFixedStride(const std::uint8_t *base, std::size_t stride,
                  std::span<const std::uint32_t> offsets,
                  std::int64_t *out)
{
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        T v;
        std::memcpy(&v, base + offsets[i] * stride, sizeof(T));
        out[i] = static_cast<std::int64_t>(v);
    }
}

} // namespace

void
decodeIntStride(const Column &col, const std::uint8_t *base,
                std::size_t stride,
                std::span<const std::uint32_t> offsets,
                std::int64_t *out)
{
    if constexpr (std::endian::native == std::endian::little) {
        if (col.type == ColType::Int) {
            switch (col.width) {
              case 1:
                decodeFixedStride<std::int8_t>(base, stride, offsets,
                                               out);
                return;
              case 2:
                decodeFixedStride<std::int16_t>(base, stride, offsets,
                                                out);
                return;
              case 4:
                decodeFixedStride<std::int32_t>(base, stride, offsets,
                                                out);
                return;
              case 8:
                decodeFixedStride<std::int64_t>(base, stride, offsets,
                                                out);
                return;
              default:
                break;
            }
        }
    }
    for (std::size_t i = 0; i < offsets.size(); ++i)
        out[i] = decodeValue(
            col, std::span<const std::uint8_t>(
                     base + offsets[i] * stride, col.width));
}

void
gatherCharsStride(const Column &col, const std::uint8_t *base,
                  std::size_t stride,
                  std::span<const std::uint32_t> offsets,
                  std::uint8_t *out)
{
    for (std::size_t i = 0; i < offsets.size(); ++i)
        std::memcpy(out + i * col.width, base + offsets[i] * stride,
                    col.width);
}

void
RowCodec::scatter(RowId r, std::span<const std::uint8_t> row,
                  const Writer &write) const
{
    const auto &schema = layout_->schema();
    if (row.size() < schema.rowBytes())
        panic("scatter: row buffer {} < row bytes {}", row.size(),
              schema.rowBytes());

    const auto &parts = layout_->parts();
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
        const Part &part = parts[p];
        const std::uint64_t base =
            static_cast<std::uint64_t>(r) * part.rowWidth;
        for (std::uint32_t s = 0; s < part.slots.size(); ++s) {
            const std::uint32_t dev = circulant_.deviceFor(s, r);
            std::uint32_t off = 0;
            for (const auto &f : part.slots[s].fragments) {
                const std::uint32_t src =
                    schema.canonicalOffset(f.column) + f.byteOffset;
                write(p, dev, base + off,
                      row.subspan(src, f.byteCount));
                off += f.byteCount;
            }
        }
    }
}

void
RowCodec::gather(RowId r, const Reader &read,
                 std::span<std::uint8_t> row) const
{
    const auto &schema = layout_->schema();
    if (row.size() < schema.rowBytes())
        panic("gather: row buffer {} < row bytes {}", row.size(),
              schema.rowBytes());

    const auto &parts = layout_->parts();
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
        const Part &part = parts[p];
        const std::uint64_t base =
            static_cast<std::uint64_t>(r) * part.rowWidth;
        for (std::uint32_t s = 0; s < part.slots.size(); ++s) {
            const std::uint32_t dev = circulant_.deviceFor(s, r);
            std::uint32_t off = 0;
            for (const auto &f : part.slots[s].fragments) {
                const std::uint32_t dst =
                    schema.canonicalOffset(f.column) + f.byteOffset;
                read(p, dev, base + off,
                     row.subspan(dst, f.byteCount));
                off += f.byteCount;
            }
        }
    }
}

std::uint32_t
RowCodec::fragmentsPerRow() const
{
    std::uint32_t n = 0;
    for (const auto &part : layout_->parts())
        for (const auto &slot : part.slots)
            n += static_cast<std::uint32_t>(slot.fragments.size());
    return n;
}

} // namespace pushtap::format
