#include "format/generators.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::format {

namespace {

/** Pending normal-column bytes, consumed in schema order. */
class NormalPool
{
  public:
    NormalPool(const TableSchema &schema,
               const std::vector<ColumnId> &normals)
    {
        for (ColumnId c : normals)
            pending_.push_back(
                Fragment{c, 0, schema.column(c).width});
    }

    bool empty() const { return pending_.empty(); }

    std::uint32_t
    remainingBytes() const
    {
        std::uint32_t n = 0;
        for (const auto &f : pending_)
            n += f.byteCount;
        return n;
    }

    /** Take up to @p want bytes, splitting fragments as needed. */
    std::vector<Fragment>
    take(std::uint32_t want)
    {
        std::vector<Fragment> out;
        while (want > 0 && !pending_.empty()) {
            Fragment &f = pending_.front();
            const std::uint32_t n = std::min(want, f.byteCount);
            out.push_back(Fragment{f.column, f.byteOffset, n});
            f.byteOffset += n;
            f.byteCount -= n;
            want -= n;
            if (f.byteCount == 0)
                pending_.pop_front();
        }
        return out;
    }

  private:
    std::deque<Fragment> pending_;
};

/** Key columns sorted widest-first (name breaks ties, deterministic). */
std::vector<ColumnId>
sortedKeys(const TableSchema &schema)
{
    auto keys = schema.keyColumnIds();
    std::sort(keys.begin(), keys.end(),
              [&](ColumnId a, ColumnId b) {
                  const auto &ca = schema.column(a);
                  const auto &cb = schema.column(b);
                  if (ca.width != cb.width)
                      return ca.width > cb.width;
                  return ca.name < cb.name;
              });
    return keys;
}

} // namespace

TableLayout
naiveAligned(const TableSchema &schema, std::uint32_t devices)
{
    if (devices == 0)
        fatal("naiveAligned: zero devices");

    std::vector<Part> parts;
    const auto &cols = schema.columns();
    for (std::size_t base = 0; base < cols.size(); base += devices) {
        Part part;
        part.slots.resize(devices);
        const std::size_t n =
            std::min<std::size_t>(devices, cols.size() - base);
        for (std::size_t i = 0; i < n; ++i) {
            const auto c = static_cast<ColumnId>(base + i);
            part.slots[i].fragments.push_back(
                Fragment{c, 0, cols[base + i].width});
            part.rowWidth = std::max(part.rowWidth,
                                     cols[base + i].width);
        }
        parts.push_back(std::move(part));
    }
    return TableLayout(schema, std::move(parts), devices);
}

TableLayout
compactAligned(const TableSchema &schema, std::uint32_t devices,
               double th)
{
    if (devices == 0)
        fatal("compactAligned: zero devices");
    if (th < 0.0 || th > 1.0)
        fatal("compactAligned: threshold {} outside [0, 1]", th);

    std::deque<ColumnId> keys;
    for (ColumnId c : sortedKeys(schema))
        keys.push_back(c);
    NormalPool normals(schema, schema.normalColumnIds());

    std::vector<Part> parts;

    // Key-anchored parts (Fig. 4 iterations). Slots open on demand
    // (a part may span fewer devices than the stripe has) and key
    // columns bin-pack into shared slots first-fit-decreasing: a key
    // of width k in a w-wide part scans at k/w efficiency whether or
    // not it shares the slot, so stacking only removes padding.
    while (!keys.empty()) {
        Part part;
        part.rowWidth = schema.column(keys.front()).width;
        const double min_width =
            th * static_cast<double>(part.rowWidth);

        while (!keys.empty()) {
            const Column &col = schema.column(keys.front());
            const bool qualifies =
                part.slots.empty() ||
                static_cast<double>(col.width) >= min_width;
            if (!qualifies)
                break; // remaining keys are narrower (sorted)
            // First fit into an open slot, else open a new one.
            Slot *target = nullptr;
            for (auto &slot : part.slots) {
                if (slot.usedBytes() + col.width <= part.rowWidth) {
                    target = &slot;
                    break;
                }
            }
            if (!target) {
                if (part.slots.size() == devices)
                    break; // part full: next iteration's part
                part.slots.emplace_back();
                target = &part.slots.back();
            }
            target->fragments.push_back(
                Fragment{keys.front(), 0, col.width});
            keys.pop_front();
        }

        // Step 3: fill leftover bytes — slot tails first, then fresh
        // slots up to the device limit — with normal fragments. New
        // slots open only while a full slot's worth of normal bytes
        // remains; shorter residues pack tighter in the final
        // compact part.
        for (auto &slot : part.slots) {
            const std::uint32_t space =
                part.rowWidth - slot.usedBytes();
            for (auto &f : normals.take(space))
                slot.fragments.push_back(f);
        }
        while (normals.remainingBytes() >= part.rowWidth &&
               part.slots.size() < devices) {
            part.slots.emplace_back();
            for (auto &f : normals.take(part.rowWidth))
                part.slots.back().fragments.push_back(f);
        }
        parts.push_back(std::move(part));
    }

    // Residual normal bytes: final compact parts of at most d slots.
    // Slots narrower than the 8 B interleave granule would fetch a
    // whole granule for a sliver, so residues prefer granule-wide
    // slots (section 4.1's bandwidth-effectiveness goal).
    constexpr std::uint32_t kGranule = 8;
    while (!normals.empty()) {
        const std::uint32_t remaining = normals.remainingBytes();
        Part part;
        if (remaining < kGranule)
            part.rowWidth = remaining;
        else
            part.rowWidth = std::max(
                kGranule, (remaining + devices - 1) / devices);
        while (!normals.empty() && part.slots.size() < devices) {
            part.slots.emplace_back();
            for (auto &f : normals.take(part.rowWidth))
                part.slots.back().fragments.push_back(f);
        }
        parts.push_back(std::move(part));
    }

    return TableLayout(schema, std::move(parts), devices);
}

} // namespace pushtap::format
