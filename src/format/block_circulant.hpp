#pragma once

/**
 * @file
 * Block-circulant data placement (section 4.2, Fig. 5): the table is
 * cut into blocks of B rows (default 1024, at least one DRAM row
 * buffer) and the slot->device mapping rotates by one device per
 * block, so every column spreads evenly over all PIM units of the
 * stripe regardless of which columns a query scans.
 */

#include <cstdint>

#include "common/types.hpp"

namespace pushtap::format {

class BlockCirculant
{
  public:
    /** Paper default block size (rows). */
    static constexpr std::uint32_t kDefaultBlockRows = 1024;

    /**
     * @param devices    Devices per stripe (rotation modulus).
     * @param block_rows Rows per block; 0 disables rotation
     *                   (Fig. 5(a) straight placement).
     */
    explicit BlockCirculant(std::uint32_t devices,
                            std::uint32_t block_rows = kDefaultBlockRows)
        : devices_(devices), blockRows_(block_rows)
    {}

    std::uint32_t devices() const { return devices_; }
    std::uint32_t blockRows() const { return blockRows_; }
    bool enabled() const { return blockRows_ != 0; }

    /** Block index of row @p r (0 when rotation is disabled). */
    std::uint64_t
    blockOf(RowId r) const
    {
        return enabled() ? r / blockRows_ : 0;
    }

    /** Physical device holding slot @p slot of row @p r. */
    std::uint32_t
    deviceFor(std::uint32_t slot, RowId r) const
    {
        return static_cast<std::uint32_t>(
            (slot + blockOf(r)) % devices_);
    }

    /** Inverse: which slot does device @p dev hold for row @p r. */
    std::uint32_t
    slotFor(std::uint32_t dev, RowId r) const
    {
        const auto rot = blockOf(r) % devices_;
        return static_cast<std::uint32_t>(
            (dev + devices_ - rot % devices_) % devices_);
    }

  private:
    std::uint32_t devices_;
    std::uint32_t blockRows_;
};

} // namespace pushtap::format
