#pragma once

/**
 * @file
 * Byte-level data re-layout (section 6.3): converts between a row's
 * canonical packed representation (what the CPU operates on in cache)
 * and its scattered placement across parts/devices in the unified
 * format. Invoked only when loading a row from DRAM and when pushing
 * a modified row back at commit.
 */

#include <cstdint>
#include <functional>
#include <span>

#include "common/types.hpp"
#include "format/block_circulant.hpp"
#include "format/layout.hpp"

namespace pushtap::format {

class RowCodec
{
  public:
    /**
     * Sink for scattered bytes: (part, device, device-local byte
     * offset within the part's region, data).
     */
    using Writer = std::function<void(std::uint32_t, std::uint32_t,
                                      std::uint64_t,
                                      std::span<const std::uint8_t>)>;

    /** Source for gathered bytes: same coordinates, fills the span. */
    using Reader = std::function<void(std::uint32_t, std::uint32_t,
                                      std::uint64_t,
                                      std::span<std::uint8_t>)>;

    RowCodec(const TableLayout &layout, const BlockCirculant &circulant)
        : layout_(&layout), circulant_(circulant)
    {}

    const TableLayout &layout() const { return *layout_; }
    const BlockCirculant &circulant() const { return circulant_; }

    /** Scatter canonical @p row bytes of row @p r to the format. */
    void scatter(RowId r, std::span<const std::uint8_t> row,
                 const Writer &write) const;

    /** Gather row @p r back into canonical @p row bytes. */
    void gather(RowId r, const Reader &read,
                std::span<std::uint8_t> row) const;

    /**
     * Number of distinct byte moves one row re-layout performs (the
     * CPU-side cost driver of the +3.5% OLTP overhead, Fig. 9(a)).
     */
    std::uint32_t fragmentsPerRow() const;

  private:
    const TableLayout *layout_;
    BlockCirculant circulant_;
};

} // namespace pushtap::format
