#pragma once

/**
 * @file
 * Byte-level data re-layout (section 6.3): converts between a row's
 * canonical packed representation (what the CPU operates on in cache)
 * and its scattered placement across parts/devices in the unified
 * format. Invoked only when loading a row from DRAM and when pushing
 * a modified row back at commit.
 */

#include <cstdint>
#include <functional>
#include <span>

#include "common/types.hpp"
#include "format/block_circulant.hpp"
#include "format/layout.hpp"

namespace pushtap::format {

/**
 * Batch-decode entry points. Both stream one column for a whole
 * selection of rows laid out with a fixed byte stride — the CPU-side
 * analog of a PIM unit's serial column read, and the primitive the
 * morsel executor builds on. `base` points at the selection's first
 * row's column bytes; row offsets[i]'s value lives at
 * base + offsets[i] * stride.
 */

/** Decode (sign-extending Int columns) into out[0..offsets.size()). */
void decodeIntStride(const Column &col, const std::uint8_t *base,
                     std::size_t stride,
                     std::span<const std::uint32_t> offsets,
                     std::int64_t *out);

/** Copy col.width raw bytes per row into out (offsets.size()*width). */
void gatherCharsStride(const Column &col, const std::uint8_t *base,
                       std::size_t stride,
                       std::span<const std::uint32_t> offsets,
                       std::uint8_t *out);

class RowCodec
{
  public:
    /**
     * Sink for scattered bytes: (part, device, device-local byte
     * offset within the part's region, data).
     */
    using Writer = std::function<void(std::uint32_t, std::uint32_t,
                                      std::uint64_t,
                                      std::span<const std::uint8_t>)>;

    /** Source for gathered bytes: same coordinates, fills the span. */
    using Reader = std::function<void(std::uint32_t, std::uint32_t,
                                      std::uint64_t,
                                      std::span<std::uint8_t>)>;

    RowCodec(const TableLayout &layout, const BlockCirculant &circulant)
        : layout_(&layout), circulant_(circulant)
    {}

    const TableLayout &layout() const { return *layout_; }
    const BlockCirculant &circulant() const { return circulant_; }

    /** Scatter canonical @p row bytes of row @p r to the format. */
    void scatter(RowId r, std::span<const std::uint8_t> row,
                 const Writer &write) const;

    /** Gather row @p r back into canonical @p row bytes. */
    void gather(RowId r, const Reader &read,
                std::span<std::uint8_t> row) const;

    /**
     * Number of distinct byte moves one row re-layout performs (the
     * CPU-side cost driver of the +3.5% OLTP overhead, Fig. 9(a)).
     */
    std::uint32_t fragmentsPerRow() const;

  private:
    const TableLayout *layout_;
    BlockCirculant circulant_;
};

} // namespace pushtap::format
