#pragma once

/**
 * @file
 * Effective-bandwidth models (sections 4.1, 7.2).
 *
 * CPU side: a transaction touching a set of columns of one row fetches
 * whole interleaved lines; effective bandwidth is useful bytes over
 * fetched bytes, averaged over row alignment phases. On the DIMM
 * system a line is an ADE stripe (g bytes from each device); on the
 * HBM system each slot's granule is an independent fetch.
 *
 * PIM side: a unit streams a key column at the part's row-width
 * stride, so scan efficiency is column width over part row width.
 * Fragmented (normal) columns cannot be PIM-scanned at all.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "format/layout.hpp"
#include "format/schema.hpp"

namespace pushtap::format {

/** Result of a CPU access-cost evaluation. */
struct CpuAccessStats
{
    double avgLines = 0.0;     ///< Lines fetched per row access.
    double fetchedBytes = 0.0; ///< Bytes moved over the bus per access.
    double usefulBytes = 0.0;  ///< Bytes the engine needed.

    double
    efficiency() const
    {
        return fetchedBytes > 0.0 ? usefulBytes / fetchedBytes : 0.0;
    }
};

class BandwidthModel
{
  public:
    /**
     * @param devices  Devices per stripe (ADE width).
     * @param granule  Interleave granularity g in bytes.
     * @param striped  True on DIMM (one line covers the same granule
     *                 index on every device); false on HBM.
     */
    BandwidthModel(std::uint32_t devices, Bytes granule, bool striped);

    std::uint32_t devices() const { return devices_; }
    Bytes granule() const { return granule_; }
    Bytes lineBytes() const { return striped_ ? granule_ * devices_
                                              : granule_; }

    /**
     * Average granule-chunks an object of @p width bytes at stride
     * @p width touches, over all alignment phases.
     */
    double averageChunksPerRow(std::uint32_t width) const;

    /** CPU cost of reading a full row through @p layout. */
    CpuAccessStats fullRowAccess(const TableLayout &layout) const;

    /**
     * CPU cost of touching only @p columns of one row (the OLTP
     * engine's per-transaction footprint).
     */
    CpuAccessStats columnSetAccess(const TableLayout &layout,
                                   const std::vector<ColumnId> &columns)
        const;

    /**
     * PIM scan efficiency of column @p id: width / part row width for
     * single-fragment columns, 0 for fragmented columns (a PIM unit
     * cannot reassemble them locally).
     */
    double pimScanEfficiency(const TableLayout &layout,
                             ColumnId id) const;

    // --- Baseline formats -------------------------------------------------

    /** CPU cost of a full-row read in a packed row store. */
    CpuAccessStats rowStoreFullRow(const TableSchema &schema) const;

    /** CPU cost of touching @p columns in a packed row store. */
    CpuAccessStats rowStoreColumns(const TableSchema &schema,
                                   const std::vector<ColumnId> &columns)
        const;

    /**
     * CPU cost of reassembling @p columns of one row from a column
     * store: every touched column is one line fetch in its own region.
     */
    CpuAccessStats columnStoreColumns(const TableSchema &schema,
                                      const std::vector<ColumnId>
                                          &columns) const;

    /**
     * PIM scan efficiency of @p id in a packed row store: the column
     * is not IDE-aligned, so the unit streams whole rows.
     */
    double
    rowStorePimScanEfficiency(const TableSchema &schema,
                              ColumnId id) const
    {
        return static_cast<double>(schema.column(id).width) /
               static_cast<double>(schema.rowBytes());
    }

  private:
    /**
     * Average distinct chunks per row access when, for each alignment
     * phase r, the touched device-local byte ranges are
     * [r*stride + lo_i, r*stride + hi_i).
     */
    double averageChunksForRanges(
        std::uint32_t stride,
        const std::vector<std::pair<std::uint32_t, std::uint32_t>>
            &ranges) const;

    std::uint32_t devices_;
    Bytes granule_;
    bool striped_;
};

} // namespace pushtap::format
