#include "format/layout.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::format {

TableLayout::TableLayout(const TableSchema &schema,
                         std::vector<Part> parts, std::uint32_t devices)
    : schema_(&schema), parts_(std::move(parts)), devices_(devices)
{
    byColumn_.resize(schema.columnCount());
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        const Part &part = parts_[p];
        for (std::uint32_t s = 0; s < part.slots.size(); ++s) {
            std::uint32_t off = 0;
            for (const auto &f : part.slots[s].fragments) {
                byColumn_[f.column].push_back(
                    Placement{p, s, off, f});
                off += f.byteCount;
            }
        }
    }
    // Keep placements in column-byte order so gather/scatter walk the
    // canonical row left to right.
    for (auto &v : byColumn_) {
        std::sort(v.begin(), v.end(),
                  [](const Placement &a, const Placement &b) {
                      return a.fragment.byteOffset <
                             b.fragment.byteOffset;
                  });
    }
    validate();
}

const Placement &
TableLayout::keyPlacement(ColumnId id) const
{
    const auto &v = byColumn_.at(id);
    if (v.size() != 1)
        fatal("column {} of table {} is fragmented into {} pieces; "
              "not a key placement",
              schema_->column(id).name, schema_->name(), v.size());
    return v.front();
}

std::optional<StrideAccess>
TableLayout::strideAccess(ColumnId id) const
{
    const Placement *pl = singlePlacement(id);
    if (pl == nullptr)
        return std::nullopt;
    return StrideAccess{pl->part, pl->slot, pl->slotOffset,
                        parts_[pl->part].rowWidth};
}

std::uint32_t
TableLayout::bytesPerDevicePerRow() const
{
    std::uint32_t n = 0;
    for (const auto &p : parts_)
        n += p.rowWidth;
    return n;
}

std::uint32_t
TableLayout::paddedRowBytes() const
{
    std::uint32_t n = 0;
    for (const auto &p : parts_)
        n += p.totalBytes();
    return n;
}

std::uint32_t
TableLayout::usedBytesPerRow() const
{
    return schema_->rowBytes();
}

std::uint32_t
TableLayout::paddingBytesPerRow() const
{
    return paddedRowBytes() - usedBytesPerRow();
}

void
TableLayout::validate() const
{
    // Each column's bytes must be covered exactly once, in pieces that
    // do not overlap; key columns must be a single fragment.
    for (ColumnId c = 0; c < schema_->columnCount(); ++c) {
        const Column &col = schema_->column(c);
        const auto &pls = byColumn_[c];
        if (col.isKey && pls.size() != 1)
            fatal("key column {} fragmented into {} pieces", col.name,
                  pls.size());
        std::uint32_t covered = 0;
        std::uint32_t expect_next = 0;
        for (const auto &pl : pls) {
            if (pl.fragment.byteOffset != expect_next)
                fatal("column {}: fragment gap/overlap at byte {}",
                      col.name, pl.fragment.byteOffset);
            expect_next += pl.fragment.byteCount;
            covered += pl.fragment.byteCount;
        }
        if (covered != col.width)
            fatal("column {}: {} bytes placed, width {}", col.name,
                  covered, col.width);
    }
    // Slot capacity checks.
    for (const auto &part : parts_) {
        if (part.slots.empty() || part.slots.size() > devices_)
            fatal("part has {} slots, device limit {}",
                  part.slots.size(), devices_);
        for (const auto &slot : part.slots) {
            if (slot.usedBytes() > part.rowWidth)
                fatal("slot uses {} bytes > row width {}",
                      slot.usedBytes(), part.rowWidth);
        }
    }
}

} // namespace pushtap::format
