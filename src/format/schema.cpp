#include "format/schema.hpp"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::format {

std::int64_t
decodeValue(const Column &col, std::span<const std::uint8_t> bytes)
{
    std::uint64_t v = 0;
    for (std::uint32_t i = 0; i < col.width && i < 8; ++i)
        v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    if (col.type == ColType::Int && col.width < 8 &&
        (v & (1ULL << (8 * col.width - 1))))
        v |= ~((1ULL << (8 * col.width)) - 1);
    return static_cast<std::int64_t>(v);
}

TableSchema::TableSchema(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns))
{
    if (columns_.empty())
        fatal("table {} has no columns", name_);
    offsets_.reserve(columns_.size());
    for (const auto &c : columns_) {
        if (c.width == 0 || (c.type == ColType::Int && c.width > 8))
            fatal("table {}: column {} has invalid width {}", name_,
                  c.name, c.width);
        offsets_.push_back(rowBytes_);
        rowBytes_ += c.width;
    }
}

ColumnId
TableSchema::columnId(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i].name == name)
            return static_cast<ColumnId>(i);
    fatal("table {}: no column named {}", name_, name);
}

bool
TableSchema::hasColumn(const std::string &name) const
{
    for (const auto &c : columns_)
        if (c.name == name)
            return true;
    return false;
}

void
TableSchema::setKeyColumns(const std::vector<std::string> &names)
{
    for (auto &c : columns_)
        c.isKey = false;
    for (const auto &n : names)
        columns_[columnId(n)].isKey = true;
}

void
TableSchema::setAllKeys()
{
    for (auto &c : columns_)
        c.isKey = true;
}

std::vector<ColumnId>
TableSchema::keyColumnIds() const
{
    std::vector<ColumnId> ids;
    for (std::size_t i = 0; i < columns_.size(); ++i)
        if (columns_[i].isKey)
            ids.push_back(static_cast<ColumnId>(i));
    return ids;
}

std::vector<ColumnId>
TableSchema::normalColumnIds() const
{
    std::vector<ColumnId> ids;
    for (std::size_t i = 0; i < columns_.size(); ++i)
        if (!columns_[i].isKey)
            ids.push_back(static_cast<ColumnId>(i));
    return ids;
}

} // namespace pushtap::format
