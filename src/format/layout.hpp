#pragma once

/**
 * @file
 * The layout algebra of the unified data format (section 4).
 *
 * A table layout is a list of *parts*. A part spans all d devices of a
 * bank stripe; each device contributes one *slot* of the part's row
 * width w_p bytes per row. A slot contains an ordered list of
 * *fragments* — byte ranges of columns — followed by zero padding.
 * Key columns are indivisible (exactly one fragment covering the whole
 * column); normal columns may shred into byte fragments anywhere.
 *
 * Device-local placement: within a part, row r's slot bytes live at
 * device-local offset r * w_p (block-circulant rotation permutes which
 * physical device holds which slot per 1024-row block, section 4.2).
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "format/schema.hpp"

namespace pushtap::format {

/** A contiguous byte range of one column placed in a slot. */
struct Fragment
{
    ColumnId column;
    std::uint32_t byteOffset; ///< First covered byte of the column.
    std::uint32_t byteCount;  ///< Covered bytes.

    bool operator==(const Fragment &) const = default;
};

/** One device slot of a part. */
struct Slot
{
    std::vector<Fragment> fragments;

    std::uint32_t
    usedBytes() const
    {
        std::uint32_t n = 0;
        for (const auto &f : fragments)
            n += f.byteCount;
        return n;
    }
};

/**
 * One part: up to `devices` slots of rowWidth bytes per row each. A
 * part may occupy fewer slots than there are devices — parts pack
 * side by side across the device dimension, so unoccupied slots cost
 * no storage.
 */
struct Part
{
    std::uint32_t rowWidth = 0;
    std::vector<Slot> slots;

    /** Real (non-padding) bytes of one row stored in this part. */
    std::uint32_t
    usedBytes() const
    {
        std::uint32_t n = 0;
        for (const auto &s : slots)
            n += s.usedBytes();
        return n;
    }

    /** Total bytes of one row including padding. */
    std::uint32_t
    totalBytes() const
    {
        return rowWidth * static_cast<std::uint32_t>(slots.size());
    }
};

/** Where one byte range of a column lives. */
struct Placement
{
    std::uint32_t part;
    std::uint32_t slot;
    std::uint32_t slotOffset; ///< Byte offset inside the slot.
    Fragment fragment;
};

/**
 * Device-local strided address of an unfragmented column: row r's
 * bytes live at offset r * stride + slotOffset of the part's region
 * on whichever device the block-circulant rotation assigns slot
 * `slot` for r. This is the zero-copy entry point batch decode uses
 * to stream a column straight off the region bytes.
 */
struct StrideAccess
{
    std::uint32_t part;
    std::uint32_t slot;
    std::uint32_t slotOffset;
    std::uint32_t stride; ///< The part's rowWidth in bytes.
};

/**
 * Complete unified layout of one table over a d-device stripe.
 * Produced by the generators in format/generators.hpp; immutable
 * afterwards.
 */
class TableLayout
{
  public:
    TableLayout(const TableSchema &schema, std::vector<Part> parts,
                std::uint32_t devices);

    const TableSchema &schema() const { return *schema_; }
    const std::vector<Part> &parts() const { return parts_; }
    std::uint32_t devices() const { return devices_; }

    /** All placements of column @p id, in column-byte order. */
    const std::vector<Placement> &placements(ColumnId id) const
    {
        return byColumn_.at(id);
    }

    /**
     * The single placement of an indivisible key column (fatal if the
     * column is fragmented).
     */
    const Placement &keyPlacement(ColumnId id) const;

    /**
     * The placement of column @p id if it occupies exactly one
     * fragment (typed single-read path), nullptr when the column is
     * shredded across fragments.
     */
    const Placement *
    singlePlacement(ColumnId id) const
    {
        const auto &pls = byColumn_.at(id);
        return pls.size() == 1 ? &pls.front() : nullptr;
    }

    /**
     * Strided single-read access to column @p id when it occupies
     * exactly one fragment; std::nullopt when the column is shredded
     * (batch decode then falls back to the fragment-gather path).
     */
    std::optional<StrideAccess> strideAccess(ColumnId id) const;

    /** Sum of rowWidth over parts: device-local bytes per row. */
    std::uint32_t bytesPerDevicePerRow() const;

    /** Provisioned bytes of one row: sum of slots x width per part. */
    std::uint32_t paddedRowBytes() const;

    /** Real bytes of one row (== schema().rowBytes()). */
    std::uint32_t usedBytesPerRow() const;

    /** Padding bytes of one row (paddedRowBytes - usedBytesPerRow). */
    std::uint32_t paddingBytesPerRow() const;

    /**
     * Verify structural invariants: every column byte placed exactly
     * once, key columns unfragmented, slot widths within rowWidth.
     * fatal() on violation (generators call this).
     */
    void validate() const;

  private:
    const TableSchema *schema_;
    std::vector<Part> parts_;
    std::uint32_t devices_;
    std::vector<std::vector<Placement>> byColumn_;
};

} // namespace pushtap::format
