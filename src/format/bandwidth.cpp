#include "format/bandwidth.hpp"

#include <cstdint>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace pushtap::format {

namespace {

/**
 * Average distinct granule-chunks touched per access for ranges
 * anchored at r * stride, averaged over alignment phases.
 */
double
averageChunks(std::uint64_t granule, std::uint32_t stride,
              const std::vector<std::pair<std::uint32_t,
                                          std::uint32_t>> &ranges)
{
    if (ranges.empty() || stride == 0)
        return 0.0;
    const std::uint64_t period =
        granule / std::gcd<std::uint64_t>(granule, stride);
    double total = 0.0;
    for (std::uint64_t k = 0; k < period; ++k) {
        const std::uint64_t base = k * stride;
        std::set<std::uint64_t> chunks;
        for (const auto &[lo, hi] : ranges) {
            if (hi <= lo)
                continue;
            const std::uint64_t first = (base + lo) / granule;
            const std::uint64_t last = (base + hi - 1) / granule;
            for (std::uint64_t c = first; c <= last; ++c)
                chunks.insert(c);
        }
        total += static_cast<double>(chunks.size());
    }
    return total / static_cast<double>(period);
}

} // namespace

BandwidthModel::BandwidthModel(std::uint32_t devices, Bytes granule,
                               bool striped)
    : devices_(devices), granule_(granule), striped_(striped)
{
    if (devices == 0 || granule == 0)
        fatal("BandwidthModel: zero devices or granule");
}

double
BandwidthModel::averageChunksPerRow(std::uint32_t width) const
{
    return averageChunks(granule_, width, {{0u, width}});
}

double
BandwidthModel::averageChunksForRanges(
    std::uint32_t stride,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &ranges)
    const
{
    return averageChunks(granule_, stride, ranges);
}

CpuAccessStats
BandwidthModel::fullRowAccess(const TableLayout &layout) const
{
    // Parts pack side by side across the device dimension, so fetch
    // cost is charged per occupied slot: each slot's row bytes cost
    // whole granules (8 B device bursts on DIMM, 64 B granules on
    // HBM). The line count (latency) on the striped system is one
    // line per chunk index of the part, shared by all its slots.
    CpuAccessStats s;
    s.usefulBytes = layout.usedBytesPerRow();
    for (const auto &part : layout.parts()) {
        if (part.rowWidth == 0 || part.slots.empty())
            continue;
        const double chunks = averageChunksForRanges(
            part.rowWidth, {{0u, part.rowWidth}});
        s.fetchedBytes += chunks * static_cast<double>(granule_) *
                          static_cast<double>(part.slots.size());
        s.avgLines += striped_
                          ? chunks
                          : chunks * static_cast<double>(
                                         part.slots.size());
    }
    return s;
}

CpuAccessStats
BandwidthModel::columnSetAccess(
    const TableLayout &layout,
    const std::vector<ColumnId> &columns) const
{
    std::vector<bool> wanted(layout.schema().columnCount(), false);
    CpuAccessStats s;
    for (ColumnId c : columns) {
        wanted.at(c) = true;
        s.usefulBytes += layout.schema().column(c).width;
    }

    for (const auto &part : layout.parts()) {
        if (part.rowWidth == 0)
            continue;
        // Per-slot granule fetches; on the striped system the lines
        // of a part are shared across its slots (union of chunk
        // indices).
        std::vector<std::pair<std::uint32_t, std::uint32_t>>
            union_ranges;
        for (const auto &slot : part.slots) {
            std::vector<std::pair<std::uint32_t, std::uint32_t>>
                ranges;
            std::uint32_t off = 0;
            for (const auto &f : slot.fragments) {
                if (wanted[f.column]) {
                    ranges.emplace_back(off, off + f.byteCount);
                    union_ranges.emplace_back(off,
                                              off + f.byteCount);
                }
                off += f.byteCount;
            }
            if (!ranges.empty()) {
                const double chunks =
                    averageChunksForRanges(part.rowWidth, ranges);
                s.fetchedBytes +=
                    chunks * static_cast<double>(granule_);
                if (!striped_)
                    s.avgLines += chunks;
            }
        }
        if (striped_ && !union_ranges.empty()) {
            s.avgLines +=
                averageChunksForRanges(part.rowWidth, union_ranges);
        }
    }
    return s;
}

double
BandwidthModel::pimScanEfficiency(const TableLayout &layout,
                                  ColumnId id) const
{
    const auto &pls = layout.placements(id);
    if (pls.size() != 1)
        return 0.0; // fragmented: not locally scannable
    const auto &part = layout.parts()[pls.front().part];
    return static_cast<double>(layout.schema().column(id).width) /
           static_cast<double>(part.rowWidth);
}

CpuAccessStats
BandwidthModel::rowStoreFullRow(const TableSchema &schema) const
{
    const std::uint32_t w = schema.rowBytes();
    const Bytes line = lineBytes();
    CpuAccessStats s;
    s.usefulBytes = w;
    s.avgLines = averageChunks(line, w, {{0u, w}});
    s.fetchedBytes = s.avgLines * static_cast<double>(line);
    return s;
}

CpuAccessStats
BandwidthModel::rowStoreColumns(
    const TableSchema &schema,
    const std::vector<ColumnId> &columns) const
{
    const Bytes line = lineBytes();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    CpuAccessStats s;
    for (ColumnId c : columns) {
        const std::uint32_t off = schema.canonicalOffset(c);
        const std::uint32_t width = schema.column(c).width;
        ranges.emplace_back(off, off + width);
        s.usefulBytes += width;
    }
    s.avgLines = averageChunks(line, schema.rowBytes(), ranges);
    s.fetchedBytes = s.avgLines * static_cast<double>(line);
    return s;
}

CpuAccessStats
BandwidthModel::columnStoreColumns(
    const TableSchema &schema,
    const std::vector<ColumnId> &columns) const
{
    const Bytes line = lineBytes();
    CpuAccessStats s;
    for (ColumnId c : columns) {
        const std::uint32_t width = schema.column(c).width;
        s.usefulBytes += width;
        // Each column element is fetched from its own region.
        s.avgLines += averageChunks(line, width, {{0u, width}});
    }
    s.fetchedBytes = s.avgLines * static_cast<double>(line);
    return s;
}

} // namespace pushtap::format
