#include "memctrl/offload_costs.hpp"

namespace pushtap::memctrl {

pim::OffloadOverheads
originalArchOverheads(const dram::Geometry &geom,
                      const dram::TimingParams &timing,
                      TimeNs per_unit_message_ns)
{
    const double units_per_channel =
        static_cast<double>(geom.ranksPerChannel) *
        static_cast<double>(geom.banksPerRank());

    pim::OffloadOverheads ov;
    // One message to every unit to launch a phase...
    ov.launchNs = units_per_channel * per_unit_message_ns;
    // ...and at least one full status sweep to detect completion.
    ov.pollNs = units_per_channel * per_unit_message_ns;
    // LS phases hand the banks over and back, rank by rank.
    const ControllerConfig defaults;
    ov.handoverNs = 2.0 * defaults.handoverPerRankNs *
                    static_cast<double>(geom.ranksPerChannel);
    (void)timing;
    return ov;
}

pim::OffloadOverheads
pushtapArchOverheads(const dram::Geometry &geom,
                     const dram::TimingParams &timing,
                     const ControllerConfig &cfg)
{
    pim::OffloadOverheads ov;
    // One disguised write per launch (a row miss in the worst case),
    // decoded by the scheduler in hardware.
    ov.launchNs = timing.rowMissLatency() + cfg.schedulerDecodeNs;
    // The polling module samples the units and answers the poll read.
    ov.pollNs = cfg.pollPeriodNs / 2.0 + timing.rowHitLatency();
    // The DRAM-side bank handover time is physical and unchanged.
    ov.handoverNs = 2.0 * cfg.handoverPerRankNs *
                    static_cast<double>(geom.ranksPerChannel);
    return ov;
}

} // namespace pushtap::memctrl
