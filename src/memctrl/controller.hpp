#pragma once

/**
 * @file
 * Event-driven model of the PUSHtap extended memory controller for one
 * channel: an access queue over per-bank state machines plus the two
 * added hardware modules of Fig. 7(a):
 *
 *  - the *scheduler* recognises launch/poll requests by their special
 *    address, broadcasts operation type + parameters to the PIM units
 *    of the channel, and performs the bank handover only for LS /
 *    Defragment operations;
 *  - the *polling module* autonomously polls the PIM units and answers
 *    the CPU's poll read when every unit has finished.
 *
 * CPU accesses to banks currently handed to PIM are queued and drain
 * when the banks return — this is the concurrency property PUSHtap
 * needs (microsecond-level OLTP latency during OLAP).
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "dram/bank_state.hpp"
#include "dram/geometry.hpp"
#include "dram/timing_params.hpp"
#include "memctrl/request.hpp"
#include "pim/launch.hpp"
#include "sim/event_queue.hpp"

namespace pushtap::memctrl {

struct ControllerConfig
{
    /** Special physical address recognised as launch/poll. */
    std::uint64_t magicAddr = 0xFFFF'F000;

    /** Scheduler decode + broadcast cost per launch. */
    TimeNs schedulerDecodeNs = 4.0;

    /** Bank-handover cost per rank (measured 0.2 us, section 7.1). */
    TimeNs handoverPerRankNs = 200.0;

    /**
     * Polling module sampling period: one status sweep of the
     * channel's PIM interfaces.
     */
    TimeNs pollPeriodNs = 2000.0;
};

/** Statistics exposed by the controller. */
struct ControllerStats
{
    std::uint64_t normalReads = 0;
    std::uint64_t normalWrites = 0;
    std::uint64_t launches = 0;
    std::uint64_t polls = 0;
    std::uint64_t handovers = 0;
    std::uint64_t blockedAccesses = 0; ///< CPU accesses that waited on PIM.
};

class PushtapController
{
  public:
    PushtapController(sim::EventQueue &eq, const dram::Geometry &geom,
                      const dram::TimingParams &timing,
                      const ControllerConfig &cfg = {});

    /** Submit a CPU request (normal, or disguised launch/poll). */
    void submit(Request req);

    /**
     * Tell the controller how long each PIM unit will take for the
     * next launched operation (the functional engine computes this
     * from the cost model). Must be set before a launch arrives.
     */
    void setNextUnitDuration(TimeNs ns) { nextUnitDurationNs_ = ns; }

    /** Classify a request the way the scheduler does. */
    RequestKind classify(const Request &req) const;

    const ControllerStats &stats() const { return stats_; }

    /** True while any PIM unit of the channel is running. */
    bool pimBusy() const { return unitsRunning_ > 0; }

    /** Banks currently handed over to PIM units. */
    bool banksOwnedByPim() const { return banksWithPim_; }

    const ControllerConfig &config() const { return cfg_; }

  private:
    void serviceNormal(Request req);
    void serviceLaunch(Request req);
    void servicePoll(Request req);
    void finishUnits();
    void drainBlocked();
    void schedulePollCheck();

    sim::EventQueue &eq_;
    dram::Geometry geom_;
    dram::TimingParams timing_;
    ControllerConfig cfg_;

    /** One state machine per bank in the channel (ranks x banks). */
    std::vector<dram::BankState> banks_;

    /** CPU requests waiting for banks to return from PIM mode. */
    std::deque<Request> blocked_;

    /** Poll requests awaiting completion of all units. */
    std::deque<Request> pendingPolls_;

    std::uint32_t unitsRunning_ = 0;
    bool banksWithPim_ = false;
    TimeNs nextUnitDurationNs_ = 0.0;
    ControllerStats stats_;
};

} // namespace pushtap::memctrl
