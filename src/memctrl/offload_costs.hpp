#pragma once

/**
 * @file
 * Per-phase offload overheads for the two controller designs compared
 * in Fig. 12(b):
 *
 *  - the *original* general-purpose PIM architecture, where the CPU
 *    software launches and polls every PIM unit individually through
 *    the PIM interface (tens of microseconds per sweep, section 2.1);
 *  - the *PUSHtap* extended controller, where one disguised write
 *    launches a whole channel and the polling module answers a single
 *    disguised read.
 */

#include "common/types.hpp"
#include "dram/geometry.hpp"
#include "dram/timing_params.hpp"
#include "memctrl/controller.hpp"
#include "pim/two_phase.hpp"

namespace pushtap::memctrl {

/**
 * Per-unit software message cost (one mailbox write or status read
 * through the rank's PIM interface). Calibrated so a full launch+poll
 * sweep of one channel's 256 units lands in the "tens of microseconds"
 * range reported for the commercial part, which reproduces the
 * 88.8% -> 35.3% mode-switch overhead span of Fig. 12(b).
 */
inline constexpr TimeNs kPerUnitMessageNs = 165.0;

/**
 * Overheads of the original architecture for one load+compute round:
 * both phases need a software launch sweep and a poll sweep over every
 * unit of the channel; LS phases additionally pay the per-rank bank
 * handover in both directions.
 */
pim::OffloadOverheads
originalArchOverheads(const dram::Geometry &geom,
                      const dram::TimingParams &timing,
                      TimeNs per_unit_message_ns = kPerUnitMessageNs);

/**
 * Overheads of the PUSHtap extended controller: launching is one
 * disguised DRAM write, completion detection costs half a polling
 * period on average plus one read, and LS phases pay the same per-rank
 * handover (the scheduler drives it, but the DRAM-side switch time is
 * physical and unchanged).
 */
pim::OffloadOverheads
pushtapArchOverheads(const dram::Geometry &geom,
                     const dram::TimingParams &timing,
                     const ControllerConfig &cfg = {});

} // namespace pushtap::memctrl
