#include "memctrl/area_model.hpp"

#include <cstdint>

namespace pushtap::memctrl {

std::uint64_t
AreaModel::schedulerGatesPerChannel()
{
    // Two-entry launch buffer of 64 B payloads (one in flight, one
    // staged): 2 * 64 * 8 bits at ~2 gates/bit latch + mux = 2048.
    const std::uint64_t buffer = 2ULL * 64 * 8 * 2;
    // Address comparator + access-type decode.
    const std::uint64_t decode = 300;
    // Broadcast FSM + per-rank PIM interface drivers (4 ranks).
    const std::uint64_t fsm = 450;
    return buffer + decode + fsm;
}

std::uint64_t
AreaModel::pollingGatesPerChannel()
{
    // Per-rank done counters (4 x ~10 gates), completion comparator
    // and the response register.
    return 4 * 10 + 15 + 20;
}

AreaBreakdown
AreaModel::estimate(std::uint32_t channels)
{
    const double um2_to_mm2 = 1e-6;
    AreaBreakdown a;
    a.schedulerMm2 = static_cast<double>(schedulerGatesPerChannel()) *
                     kUm2PerGate * channels * um2_to_mm2;
    a.pollingMm2 = static_cast<double>(pollingGatesPerChannel()) *
                   kUm2PerGate * channels * um2_to_mm2;
    return a;
}

} // namespace pushtap::memctrl
