#pragma once

/**
 * @file
 * Analytic area model for the two hardware modules added to the
 * memory controller (section 7.6). The paper synthesised them with
 * Synopsys DC on TSMC 90 nm at 2.4 GHz; we model area as NAND2-
 * equivalent gate counts times a 90 nm gate footprint, with gate
 * counts derived from the module structure (queues, decoders,
 * comparators, counters) and calibrated against the reported totals:
 * scheduler 0.112 mm^2, polling module 0.003 mm^2, for an 8-channel
 * controller of ~13 mm^2.
 */

#include <cstdint>

namespace pushtap::memctrl {

struct AreaBreakdown
{
    double schedulerMm2;
    double pollingMm2;

    double total() const { return schedulerMm2 + pollingMm2; }
};

class AreaModel
{
  public:
    /** NAND2-equivalent footprint at 90 nm, um^2 per gate. */
    static constexpr double kUm2PerGate = 5.0;

    /** Reference total area of a server-class memory controller. */
    static constexpr double kControllerMm2 = 13.0;

    /**
     * Scheduler gate count per channel: request-address comparator,
     * a 16-entry x 64 B payload buffer (dominant), the broadcast FSM
     * and the per-rank PIM-interface drivers.
     */
    static std::uint64_t schedulerGatesPerChannel();

    /**
     * Polling module gate count per channel: per-rank done counters
     * plus a completion comparator; tiny by construction.
     */
    static std::uint64_t pollingGatesPerChannel();

    /** Area for an @p channels-channel controller. */
    static AreaBreakdown estimate(std::uint32_t channels);

    /** The paper's synthesised numbers for reference (8 channels). */
    static AreaBreakdown
    paperReported()
    {
        return AreaBreakdown{0.112, 0.003};
    }
};

} // namespace pushtap::memctrl
