#pragma once

/**
 * @file
 * Requests entering the extended memory controller (section 6.1).
 * Launch and poll requests are disguised as normal memory accesses to
 * a special physical address preconfigured at boot; the scheduler
 * recognises them by address and access type.
 */

#include <cstdint>
#include <functional>
#include <optional>

#include "common/types.hpp"
#include "pim/launch.hpp"

namespace pushtap::memctrl {

enum class AccessType : std::uint8_t
{
    Read,
    Write,
};

/** One line-granularity memory request from the CPU. */
struct Request
{
    AccessType type = AccessType::Read;
    std::uint64_t addr = 0;          ///< Flat physical address.
    std::uint32_t rank = 0;
    std::uint32_t bankInRank = 0;    ///< Flattened device*banks+bank.
    std::uint64_t row = 0;

    /**
     * Payload carried by a write to the special address (a launch
     * request); ignored for normal accesses.
     */
    std::optional<pim::LaunchRequest::Payload> payload;

    /** Completion callback, invoked with the finish tick. */
    std::function<void(Tick)> onComplete;
};

/** How the scheduler classified a request. */
enum class RequestKind : std::uint8_t
{
    Normal, ///< Regular CPU memory access.
    Launch, ///< Disguised write: decode payload, drive PIM units.
    Poll,   ///< Disguised read: answer when all PIM units finish.
};

} // namespace pushtap::memctrl
