#include "memctrl/controller.hpp"

#include <cstdint>
#include <deque>
#include <utility>

#include "common/log.hpp"

namespace pushtap::memctrl {

PushtapController::PushtapController(sim::EventQueue &eq,
                                     const dram::Geometry &geom,
                                     const dram::TimingParams &timing,
                                     const ControllerConfig &cfg)
    : eq_(eq), geom_(geom), timing_(timing), cfg_(cfg)
{
    const std::uint32_t nbanks =
        geom_.ranksPerChannel * geom_.banksPerRank();
    banks_.reserve(nbanks);
    for (std::uint32_t i = 0; i < nbanks; ++i)
        banks_.emplace_back(timing_);
}

RequestKind
PushtapController::classify(const Request &req) const
{
    if (req.addr == cfg_.magicAddr) {
        return req.type == AccessType::Write ? RequestKind::Launch
                                             : RequestKind::Poll;
    }
    return RequestKind::Normal;
}

void
PushtapController::submit(Request req)
{
    switch (classify(req)) {
      case RequestKind::Normal:
        serviceNormal(std::move(req));
        break;
      case RequestKind::Launch:
        serviceLaunch(std::move(req));
        break;
      case RequestKind::Poll:
        servicePoll(std::move(req));
        break;
    }
}

void
PushtapController::serviceNormal(Request req)
{
    if (banksWithPim_) {
        // Banks belong to the PIM units (LS or Defragment phase):
        // queue the access until they are handed back.
        ++stats_.blockedAccesses;
        blocked_.push_back(std::move(req));
        return;
    }

    const std::uint32_t bank_index =
        req.rank * geom_.banksPerRank() + req.bankInRank;
    if (bank_index >= banks_.size())
        panic("bank index {} out of range {}", bank_index,
              banks_.size());

    auto &bank = banks_[bank_index];
    const Tick done = req.type == AccessType::Read
                          ? bank.accessRead(eq_.now(), req.row)
                          : bank.accessWrite(eq_.now(), req.row);

    if (req.type == AccessType::Read)
        ++stats_.normalReads;
    else
        ++stats_.normalWrites;

    if (req.onComplete)
        eq_.schedule(done, [cb = std::move(req.onComplete), done] {
            cb(done);
        });
}

void
PushtapController::serviceLaunch(Request req)
{
    if (!req.payload)
        fatal("launch request without payload");
    const auto launch = pim::LaunchRequest::decode(*req.payload);
    ++stats_.launches;

    TimeNs start_delay = cfg_.schedulerDecodeNs;
    if (launch.needsBankHandover()) {
        // Hand every rank's banks to the PIM units; handovers of the
        // ranks on one channel are serialised on the command bus.
        start_delay += cfg_.handoverPerRankNs *
                       static_cast<double>(geom_.ranksPerChannel);
        banksWithPim_ = true;
        ++stats_.handovers;
    }

    unitsRunning_ = geom_.ranksPerChannel * geom_.banksPerRank();
    const bool handback = launch.needsBankHandover();
    const TimeNs unit_ns = nextUnitDurationNs_;

    // All units of the channel start together after the broadcast and
    // finish after their (equal, per the balanced layout) duration.
    eq_.scheduleAfterNs(start_delay + unit_ns, [this, handback] {
        unitsRunning_ = 0;
        if (handback) {
            // Handing banks back also costs the per-rank switch.
            eq_.scheduleAfterNs(
                cfg_.handoverPerRankNs *
                    static_cast<double>(geom_.ranksPerChannel),
                [this] {
                    banksWithPim_ = false;
                    drainBlocked();
                    finishUnits();
                });
        } else {
            finishUnits();
        }
    });

    // The disguised write itself completes immediately at the bus.
    if (req.onComplete) {
        const Tick done = eq_.now() + nsToTicks(timing_.tBURST);
        eq_.schedule(done, [cb = std::move(req.onComplete), done] {
            cb(done);
        });
    }
}

void
PushtapController::servicePoll(Request req)
{
    ++stats_.polls;
    if (unitsRunning_ == 0) {
        // Finished already: answer through the DRAM read protocol.
        const Tick done =
            eq_.now() + nsToTicks(timing_.rowHitLatency());
        if (req.onComplete)
            eq_.schedule(done, [cb = std::move(req.onComplete), done] {
                cb(done);
            });
        return;
    }
    pendingPolls_.push_back(std::move(req));
    schedulePollCheck();
}

void
PushtapController::schedulePollCheck()
{
    eq_.scheduleAfterNs(cfg_.pollPeriodNs, [this] {
        if (unitsRunning_ == 0)
            finishUnits();
        else
            schedulePollCheck();
    });
}

void
PushtapController::finishUnits()
{
    // Answer all outstanding polls.
    while (!pendingPolls_.empty()) {
        Request req = std::move(pendingPolls_.front());
        pendingPolls_.pop_front();
        const Tick done =
            eq_.now() + nsToTicks(timing_.rowHitLatency());
        if (req.onComplete)
            eq_.schedule(done, [cb = std::move(req.onComplete), done] {
                cb(done);
            });
    }
}

void
PushtapController::drainBlocked()
{
    std::deque<Request> pending;
    pending.swap(blocked_);
    while (!pending.empty()) {
        Request req = std::move(pending.front());
        pending.pop_front();
        serviceNormal(std::move(req));
    }
}

} // namespace pushtap::memctrl
